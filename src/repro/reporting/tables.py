"""Minimal ASCII table/series rendering for benchmark output.

The benchmark harness prints the same rows and series the paper's tables
and figures report; these helpers keep the output alignment stable so
EXPERIMENTS.md can quote it verbatim.
"""

from __future__ import annotations

from typing import Iterable, List, Sequence


def format_float(value: float, digits: int = 2) -> str:
    """Fixed-point format used throughout the benchmark reports."""
    return f"{value:.{digits}f}"


def _wrap_cell(cell: str, width: int) -> List[str]:
    """Split a cell into chunks of at most ``width`` characters.

    Prefers breaking after separator characters (``.``, ``_``, space) so
    dotted metric names split at segment boundaries; falls back to a hard
    break when no separator lands in the window.
    """
    if width < 1:
        raise ValueError("wrap width must be >= 1")
    chunks: List[str] = []
    rest = cell
    while len(rest) > width:
        window = rest[: width + 1]
        break_at = max(
            window.rfind(sep, 1, width + 1) for sep in (".", "_", " ")
        )
        if break_at < 1:
            break_at = width
        chunks.append(rest[:break_at])
        rest = rest[break_at:].lstrip(" ")
    chunks.append(rest)
    return chunks


class AsciiTable:
    """A fixed-header ASCII table accumulated row by row.

    Args:
        headers: Column headers.
        title: Optional title line above the table.
        max_col_width: When positive, caps every column at this many
            characters: longer cells wrap onto continuation lines (the
            row's other columns render blank there), so a single long
            cell — e.g. a dotted metric name wider than the header —
            cannot blow out the whole table's alignment or push rows past
            the terminal width.
    """

    def __init__(self, headers: Sequence[str], title: str = "",
                 max_col_width: int = 0):
        if not headers:
            raise ValueError("headers must be non-empty")
        if max_col_width < 0:
            raise ValueError("max_col_width must be >= 0")
        self.title = title
        self.headers = [str(h) for h in headers]
        self.rows: List[List[str]] = []
        self.max_col_width = max_col_width

    def add_row(self, *cells: object) -> None:
        """Append a row; cell count must match the header."""
        if len(cells) != len(self.headers):
            raise ValueError(
                f"expected {len(self.headers)} cells, got {len(cells)}"
            )
        self.rows.append([str(c) for c in cells])

    def _wrapped(self, cells: Sequence[str]) -> List[List[str]]:
        """One logical row as physical lines (cells chunked to the cap)."""
        chunked = [_wrap_cell(c, self.max_col_width) for c in cells]
        depth = max(len(chunks) for chunks in chunked)
        return [
            [chunks[k] if k < len(chunks) else "" for chunks in chunked]
            for k in range(depth)
        ]

    def render(self) -> str:
        """The table as a string."""
        physical: List[List[str]] = []
        header_lines = [self.headers]
        if self.max_col_width:
            header_lines = self._wrapped(self.headers)
            for row in self.rows:
                physical.extend(self._wrapped(row))
        else:
            physical = list(self.rows)
        widths = [0] * len(self.headers)
        for line in header_lines + physical:
            for i, cell in enumerate(line):
                widths[i] = max(widths[i], len(cell))

        def fmt(cells: Sequence[str]) -> str:
            return " | ".join(c.ljust(w) for c, w in zip(cells, widths))

        lines = []
        if self.title:
            lines.append(self.title)
        lines.extend(fmt(line) for line in header_lines)
        lines.append("-+-".join("-" * w for w in widths))
        lines.extend(fmt(row) for row in physical)
        return "\n".join(lines)

    def __str__(self) -> str:
        return self.render()


def render_series(
    name: str, xs: Iterable[object], ys: Iterable[float], digits: int = 2
) -> str:
    """One figure series as ``name: x=y, x=y, ...`` (figure reproductions)."""
    pairs = ", ".join(
        f"{x}={format_float(float(y), digits)}" for x, y in zip(xs, ys)
    )
    return f"{name}: {pairs}"
