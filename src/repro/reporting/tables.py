"""Minimal ASCII table/series rendering for benchmark output.

The benchmark harness prints the same rows and series the paper's tables
and figures report; these helpers keep the output alignment stable so
EXPERIMENTS.md can quote it verbatim.
"""

from __future__ import annotations

from typing import Iterable, List, Sequence


def format_float(value: float, digits: int = 2) -> str:
    """Fixed-point format used throughout the benchmark reports."""
    return f"{value:.{digits}f}"


class AsciiTable:
    """A fixed-header ASCII table accumulated row by row."""

    def __init__(self, headers: Sequence[str], title: str = ""):
        if not headers:
            raise ValueError("headers must be non-empty")
        self.title = title
        self.headers = [str(h) for h in headers]
        self.rows: List[List[str]] = []

    def add_row(self, *cells: object) -> None:
        """Append a row; cell count must match the header."""
        if len(cells) != len(self.headers):
            raise ValueError(
                f"expected {len(self.headers)} cells, got {len(cells)}"
            )
        self.rows.append([str(c) for c in cells])

    def render(self) -> str:
        """The table as a string."""
        widths = [len(h) for h in self.headers]
        for row in self.rows:
            for i, cell in enumerate(row):
                widths[i] = max(widths[i], len(cell))

        def fmt(cells: Sequence[str]) -> str:
            return " | ".join(c.ljust(w) for c, w in zip(cells, widths))

        lines = []
        if self.title:
            lines.append(self.title)
        lines.append(fmt(self.headers))
        lines.append("-+-".join("-" * w for w in widths))
        lines.extend(fmt(row) for row in self.rows)
        return "\n".join(lines)

    def __str__(self) -> str:
        return self.render()


def render_series(
    name: str, xs: Iterable[object], ys: Iterable[float], digits: int = 2
) -> str:
    """One figure series as ``name: x=y, x=y, ...`` (figure reproductions)."""
    pairs = ", ".join(
        f"{x}={format_float(float(y), digits)}" for x, y in zip(xs, ys)
    )
    return f"{name}: {pairs}"
