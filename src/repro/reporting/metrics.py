"""Render a metrics-registry snapshot as an ASCII table.

``repro metrics --format text`` and the CI perf-gate logs both print this;
the column layout follows the other benchmark tables so EXPERIMENTS.md can
quote it verbatim.  Counters and gauges print their value; histograms print
``count / mean / max-bucket`` plus a compact per-bucket breakdown.
"""

from __future__ import annotations

from typing import Dict, Optional

from repro.reporting.tables import AsciiTable


def _format_value(value) -> str:
    if isinstance(value, float):
        return f"{value:.6g}"
    return str(value)


def _histogram_detail(data: Dict[str, object]) -> str:
    """``le=bound:count`` pairs for non-empty buckets, overflow last."""
    bounds = list(data["buckets"])
    counts = list(data["counts"])
    parts = [
        f"le={_format_value(bound)}:{count}"
        for bound, count in zip(bounds, counts[:-1])
        if count
    ]
    if counts[-1]:
        parts.append(f"inf:{counts[-1]}")
    return " ".join(parts) if parts else "-"


def render_metrics_table(snapshot: Dict[str, Dict[str, object]],
                         title: str = "metrics registry",
                         max_col_width: int = 40) -> str:
    """One row per metric, sorted by name (the snapshot's natural order).

    Args:
        snapshot: A :meth:`repro.obs.MetricsRegistry.snapshot` (or
            :meth:`delta`) mapping.
        title: Table title line.
        max_col_width: Column width cap.  Metric names longer than the
            cap (deeply dotted series like the per-SLO-class
            ``repro.gateway.*`` histograms) and long histogram bucket
            breakdowns wrap onto continuation lines at segment boundaries
            instead of stretching every row in the table; ``0`` disables
            wrapping.
    """
    table = AsciiTable(["metric", "kind", "value", "detail"], title=title,
                       max_col_width=max_col_width)
    for name in sorted(snapshot):
        data = snapshot[name]
        kind = data["kind"]
        if kind == "histogram":
            count = data["count"]
            mean = (data["sum"] / count) if count else 0.0
            table.add_row(
                name, kind,
                f"n={count} mean={_format_value(mean)}",
                _histogram_detail(data),
            )
        else:
            table.add_row(name, kind, _format_value(data["value"]), "-")
    return table.render()


def render_metrics(snapshot: Dict[str, Dict[str, object]],
                   format: str = "text",
                   title: Optional[str] = None) -> str:
    """``render_metrics_table`` or deterministic JSON, by ``format``."""
    if format == "json":
        import json

        return json.dumps(snapshot, indent=2, sort_keys=True)
    return render_metrics_table(
        snapshot, title=title if title is not None else "metrics registry"
    )
