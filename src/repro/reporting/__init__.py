"""Reporting: ASCII tables and figure-series renderers matching the paper."""

from repro.reporting.tables import AsciiTable, format_float, render_series

__all__ = ["AsciiTable", "format_float", "render_series"]
