"""Reporting: ASCII tables and figure-series renderers matching the paper."""

from repro.reporting.metrics import render_metrics, render_metrics_table
from repro.reporting.tables import AsciiTable, format_float, render_series

__all__ = [
    "AsciiTable",
    "format_float",
    "render_metrics",
    "render_metrics_table",
    "render_series",
]
