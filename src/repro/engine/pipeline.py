"""The unified decode pipeline: one speculate→fit→verify→commit→advance loop.

The paper's Algorithm 2 is *one* loop, and this module is its single home.
Every execution surface — the offline engines
(:class:`~repro.engine.incremental.IncrementalEngine`,
:class:`~repro.engine.tree_spec.SpecInferEngine`), the per-request serving
sessions (:mod:`repro.serving.session`), and the continuous-batching request
managers (:mod:`repro.serving.manager`) — is a thin adapter over the pieces
defined here:

* :class:`DecodeState` — the canonical per-request state machine (KV cache,
  pending token, RNG, emitted tokens, step traces, termination flags).
* :class:`TreeFitter` — the only home of tree→cache capacity math and BFS
  pruning (:func:`prune_to_size`).
* :class:`TraceRecorder` — the only construction site of
  :class:`~repro.engine.generation.StepTrace` records.
* :class:`VerificationBackend` — the pluggable verify seam with three
  implementations: :class:`PerRequestBackend` (one
  :class:`~repro.verify.verifier.TokenTreeVerifier` pass per request),
  :class:`FusedBackend` (one
  :class:`~repro.engine.batched.BatchedTreeVerifier` pass per batch, block
  or dense mode), and :class:`IncrementalBackend` (Algorithm 1 as the
  degenerate one-node tree).
* :class:`DecodePipeline` — the per-iteration loop itself
  (:meth:`DecodePipeline.tick`).

Because greedy fused, greedy per-request, and offline generation share this
one loop, the bit-equivalence suites verify the architecture rather than
four hand-synchronized copies; future backends (async, sharded,
disaggregated verify) plug into the same seam.
"""

from __future__ import annotations

from abc import ABC, abstractmethod
from collections import deque
from dataclasses import dataclass, field
from typing import Callable, List, Optional, Sequence
from weakref import WeakKeyDictionary

import numpy as np

from repro.analysis.sanitizer import hot_path
from repro.engine.batched import BatchedTreeVerifier
from repro.faults import FaultError, FaultKind
from repro.engine.generation import (
    GenerationConfig,
    GenerationResult,
    StepTrace,
)
from repro.model import perf
from repro.model.sampling import SamplingConfig, sample_token
from repro.model.transformer import TransformerLM
from repro.obs import DEFAULT_COUNT_BUCKETS, REGISTRY, TRACER
from repro.speculate.packed import PackedSpeculator
from repro.tree.token_tree import TokenTree
from repro.verify.result import VerificationResult
from repro.verify.verifier import TokenTreeVerifier

# Interned once at import; REGISTRY.reset() zeroes these in place.
_TICKS = REGISTRY.counter(
    "repro.engine.ticks", help="pipeline iterations executed")
_RETIRED = REGISTRY.counter(
    "repro.engine.retired", help="states retired by the tree fitter")
_TREES_PRUNED = REGISTRY.counter(
    "repro.engine.trees_pruned", help="speculated trees shrunk to fit")
_SPECULATED_NODES = REGISTRY.counter(
    "repro.engine.speculated_nodes", help="tree nodes before fitting")
_TOKENS_EMITTED = REGISTRY.counter(
    "repro.engine.tokens_emitted", help="verified tokens appended")
_TREE_SIZE = REGISTRY.histogram(
    "repro.engine.tree_size", buckets=DEFAULT_COUNT_BUCKETS,
    help="fitted tree sizes per verification step")
_TOKENS_PER_STEP = REGISTRY.histogram(
    "repro.engine.tokens_per_step", buckets=DEFAULT_COUNT_BUCKETS,
    help="verified tokens emitted per committed step (Table 2)")
_FALLBACK_ENTRIES = REGISTRY.counter(
    "repro.engine.fallback_entries",
    help="faults that switched the pipeline into incremental fallback")
_FALLBACK_TICKS = REGISTRY.counter(
    "repro.engine.fallback_ticks",
    help="pipeline ticks served in incremental fallback mode")
_TICK_ALLOCS = REGISTRY.counter(
    "repro.engine.tick.allocs",
    help="tracked hot-path buffer allocations during pipeline ticks "
         "(per-tick delta of repro.model.hot_alloc_events; zero at steady "
         "state once scratch arenas are warm)")


def _observe_verify(kind: str, trees: Sequence[TokenTree]) -> None:
    """Charge one backend verification pass to ``repro.verify.<kind>.*``."""
    REGISTRY.counter(f"repro.verify.{kind}.passes").inc()
    REGISTRY.counter(f"repro.verify.{kind}.requests").inc(len(trees))
    REGISTRY.counter(f"repro.verify.{kind}.tokens_scored").inc(
        sum(len(tree) for tree in trees)
    )


# -- tree fitting ----------------------------------------------------------------


def prune_to_size(tree: TokenTree, limit: int,
                  max_depth: Optional[int] = None) -> TokenTree:
    """Keep up to ``limit`` nodes in BFS order, optionally bounding depth
    (root always survives)."""
    keep = set()
    queue = deque([0])
    while queue and len(keep) < limit:
        idx = queue.popleft()
        if max_depth is not None and tree.nodes[idx].depth > max_depth:
            continue
        keep.add(idx)
        queue.extend(tree.nodes[idx].children)
    pruned = TokenTree(tree.root.token)
    pruned.nodes[0].proposals = dict(tree.nodes[0].proposals)
    mapping = {0: 0}
    for idx in sorted(keep - {0}, key=lambda i: tree.path_to(i)):
        node = tree.nodes[idx]
        if node.parent not in mapping:
            continue
        new_idx = pruned.add_child(
            mapping[node.parent], node.token, ssm_id=None
        )
        pruned.nodes[new_idx].ssm_ids = set(node.ssm_ids)
        pruned.nodes[new_idx].proposals = dict(node.proposals)
        mapping[idx] = new_idx
    return pruned


class TreeFitter:
    """Fits speculated trees into a request's remaining KV capacity.

    The verification pass appends ``len(tree)`` rows before compaction, and
    a node at depth ``d`` occupies position ``prefix + d``, so trees near
    end-of-context must shrink in both node count and depth; when not even
    the root fits, the request cannot decode further and :meth:`fit`
    returns ``None`` (the pipeline retires the request).
    """

    def __init__(self, max_seq_len: int):
        self.max_seq_len = max_seq_len

    def fit(self, tree: TokenTree, cache) -> Optional[TokenTree]:
        """``tree`` pruned to fit ``cache``, or ``None`` when nothing fits."""
        available = cache.capacity - cache.length
        max_depth = self.max_seq_len - 1 - cache.length
        if available < 1 or max_depth < 0:
            return None
        if len(tree) <= available and tree.max_depth() <= max_depth:
            return tree
        return prune_to_size(tree, available, max_depth=max_depth)


# -- per-request decode state ------------------------------------------------------


class DecodeState:
    """Canonical per-request decode state machine.

    Owns everything one request needs between pipeline ticks: the LLM KV
    cache, the (optional) speculator with its SSM caches, the pending
    token, the RNG, the emitted tokens, and the per-step traces.

    Args:
        model: The LLM.
        prompt: Input token ids (non-empty).
        config: Generation bounds / decoding mode.
        speculator: Optional :class:`~repro.speculate.speculator.Speculator`.
            ``None`` selects incremental decoding (Algorithm 1) — the
            pipeline speculates the degenerate one-node tree.
        cache_factory: Optional KV-cache allocation override (e.g.
            ``pool.new_sequence`` for paged storage).
        rng: Optional RNG override; defaults to ``default_rng(config.seed)``.
    """

    def __init__(
        self,
        model: TransformerLM,
        prompt: Sequence[int],
        config: Optional[GenerationConfig] = None,
        speculator=None,
        cache_factory: Optional[Callable] = None,
        rng: Optional[np.random.Generator] = None,
    ):
        config = config or GenerationConfig()
        prompt_arr = np.asarray(list(prompt), dtype=np.intp)
        if prompt_arr.size == 0:
            raise ValueError("prompt must be non-empty")
        self.model = model
        self.prompt = prompt_arr
        self.config = config
        self.speculator = speculator
        self.rng = rng if rng is not None else np.random.default_rng(config.seed)
        self.cache = (cache_factory or model.new_cache)()
        #: Optional :class:`~repro.speculate.router.RouteAssignment` pinned
        #: by the serving layer when this request was routed to a pool
        #: member; the pipeline feeds acceptance back through it.
        self.route = None
        self.tokens: List[int] = []
        self.steps: List[StepTrace] = []
        self.finished_by_eos = False
        self.retired = False
        if prompt_arr.size > 1:
            model.prefill(prompt_arr[:-1], self.cache)
        if speculator is not None:
            speculator.reset()
            if prompt_arr.size > 1:
                speculator.prefill(prompt_arr[:-1])
        self.pending = int(prompt_arr[-1])

    @property
    def sampling(self) -> SamplingConfig:
        return self.config.sampling

    @property
    def finished(self) -> bool:
        """Whether the request is done: EOS, token budget, or context
        exhausted (the fitter found no room for even a one-node tree)."""
        return (
            self.finished_by_eos
            or self.retired
            or len(self.tokens) >= self.config.max_new_tokens
        )

    def emit(self, emitted: Sequence[int]) -> List[int]:
        """Append tokens, honoring EOS and the token budget."""
        config = self.config
        eos = self.model.config.eos_token_id
        appended: List[int] = []
        for token in emitted:
            if len(self.tokens) >= config.max_new_tokens:
                break
            self.tokens.append(int(token))
            appended.append(int(token))
            if config.stop_on_eos and token == eos:
                self.finished_by_eos = True
                break
        return appended

    def release(self) -> None:
        """Free cache resources (paged caches return blocks to the pool)."""
        free = getattr(self.cache, "free", None)
        if callable(free):
            free()

    def to_result(self) -> GenerationResult:
        """Package the state as an offline :class:`GenerationResult`."""
        result = GenerationResult(prompt=self.prompt)
        result.tokens = list(self.tokens)
        result.steps = list(self.steps)
        result.finished_by_eos = self.finished_by_eos
        return result


# -- trace recording ---------------------------------------------------------------


class TraceRecorder:
    """The sole construction site of :class:`StepTrace` records.

    Every surface shares this one builder, so the cost model's inputs
    (token counts, tree shapes, prefix lengths) cannot drift between the
    engines and the serving runtime.
    """

    def record(self, state: DecodeState, tree: TokenTree,
               verification: VerificationResult,
               incremental_shape: bool = False) -> StepTrace:
        """Build and append the trace for one committed verification step.

        Incremental steps (``state.speculator is None``) record the
        Algorithm 1 shape — one token scored, one emitted, no tree fields —
        even though the pipeline modeled them as a one-node tree.
        ``incremental_shape`` forces that shape for a *speculative* state
        whose tick degraded to incremental decoding (fault fallback): no
        speculation ran, so charging SSM steps or tree fields to the cost
        model would misprice the step.
        """
        if state.speculator is None or incremental_shape:
            fields = dict(
                llm_tokens_scored=1,
                tokens_emitted=1,
                prefix_len=state.cache.length - 1,
            )
        else:
            leaves = [i for i in range(len(tree)) if tree.is_leaf(i)]
            fields = dict(
                llm_tokens_scored=len(tree),
                tokens_emitted=len(verification.accepted_tokens),
                ssm_steps=state.speculator.speculation_latency_steps(),
                tree_size=len(tree),
                tree_depth=tree.max_depth(),
                tree_leaves=len(leaves),
                tree_path_tokens=sum(len(tree.path_to(i)) for i in leaves),
                prefix_len=state.cache.length - len(verification.accepted_nodes),
                num_rejections=verification.num_rejections,
            )
        trace = StepTrace(**fields)
        state.steps.append(trace)
        _TOKENS_PER_STEP.observe(trace.tokens_emitted)
        if trace.tree_size:
            _TREE_SIZE.observe(trace.tree_size)
        TRACER.event(
            "repro.engine.step",
            llm_tokens_scored=trace.llm_tokens_scored,
            tokens_emitted=trace.tokens_emitted,
            tree_size=trace.tree_size,
            tree_depth=trace.tree_depth,
            prefix_len=trace.prefix_len,
            num_rejections=trace.num_rejections,
        )
        return trace


# -- verification backends ---------------------------------------------------------


class VerificationBackend(ABC):
    """The pipeline's pluggable verify seam.

    A backend turns a batch of (state, fitted tree) pairs into per-request
    :class:`VerificationResult`s, committing each accepted path to the
    request's KV cache.  Implementations decide the execution strategy —
    one pass per request, one fused pass per batch, or plain incremental
    decoding — without touching the loop around them.
    """

    #: The LLM the backend verifies against (used by the pipeline to size
    #: the tree fitter).
    model: TransformerLM

    @abstractmethod
    def verify(self, states: Sequence[DecodeState],
               trees: Sequence[TokenTree]) -> List[VerificationResult]:
        """Verify each tree against its state's cache; batch order."""


class PerRequestBackend(VerificationBackend):
    """One :class:`TokenTreeVerifier` pass per request.

    Args:
        model: The LLM.
        sampling: Decoding mode.  ``None`` (default) uses each state's own
            sampling config — the per-session discipline the serving
            sessions and offline engines rely on.
        rng: Verification randomness.  ``None`` (default) draws from each
            state's own stream (speculation and verification then share the
            request RNG, matching the offline engines).  An explicit
            generator is consumed across the batch in request order — the
            same discipline :class:`FusedBackend` uses, which makes the two
            backends exchangeable under stochastic decoding.
        use_naive_sampling: Swap MSS for the Table 3 naive baseline.
        reuse_scratch: Reuse per-verifier scratch arenas across steps
            (see :class:`TokenTreeVerifier`).
        precision: Draft-scoring precision for greedy verification
            (``"fp32"``/``"fp16"``/``"int8"``; see
            :mod:`repro.verify.precision`).
    """

    def __init__(
        self,
        model: TransformerLM,
        sampling: Optional[SamplingConfig] = None,
        rng: Optional[np.random.Generator] = None,
        use_naive_sampling: bool = False,
        reuse_scratch: bool = True,
        precision: str = "fp32",
    ):
        self.model = model
        self.sampling = sampling
        self.rng = rng
        self.use_naive_sampling = use_naive_sampling
        self.reuse_scratch = reuse_scratch
        self.precision = precision
        self._verifiers: "WeakKeyDictionary[DecodeState, TokenTreeVerifier]" = (
            WeakKeyDictionary()
        )

    def _verifier_for(self, state: DecodeState) -> TokenTreeVerifier:
        verifier = self._verifiers.get(state)
        if verifier is None:
            verifier = TokenTreeVerifier(
                self.model,
                sampling=self.sampling or state.sampling,
                rng=self.rng if self.rng is not None else state.rng,
                use_naive_sampling=self.use_naive_sampling,
                reuse_scratch=self.reuse_scratch,
                precision=self.precision,
            )
            self._verifiers[state] = verifier
        return verifier

    def verify(self, states: Sequence[DecodeState],
               trees: Sequence[TokenTree]) -> List[VerificationResult]:
        _observe_verify("per_request", trees)
        with TRACER.span("repro.verify.per_request", requests=len(trees)):
            return [
                self._verifier_for(state).verify_step(tree, state.cache)
                for state, tree in zip(states, trees)
            ]


class FusedBackend(VerificationBackend):
    """One fused :class:`BatchedTreeVerifier` pass over the whole batch.

    Args:
        model: The LLM.
        sampling: Decoding mode shared by the batch.
        rng: Verification randomness, consumed in request order.
        use_naive_sampling: Swap MSS for the Table 3 naive baseline.
        mode: ``"block"`` (block-sparse, default) or ``"dense"``
            (reference block-diagonal mask); bit-equivalent outputs.
        reuse_scratch: Reuse batch-wide scratch arenas across ticks
            (see :class:`BatchedTreeVerifier`).
        precision: Draft-scoring precision for greedy verification
            (``"fp32"``/``"fp16"``/``"int8"``; see
            :mod:`repro.verify.precision`).
    """

    def __init__(
        self,
        model: TransformerLM,
        sampling: Optional[SamplingConfig] = None,
        rng: Optional[np.random.Generator] = None,
        use_naive_sampling: bool = False,
        mode: str = "block",
        reuse_scratch: bool = True,
        precision: str = "fp32",
    ):
        self.model = model
        self._verifier = BatchedTreeVerifier(
            model,
            sampling=sampling,
            rng=rng,
            use_naive_sampling=use_naive_sampling,
            mode=mode,
            reuse_scratch=reuse_scratch,
            precision=precision,
        )

    @property
    def mode(self) -> str:
        return self._verifier.mode

    def verify(self, states: Sequence[DecodeState],
               trees: Sequence[TokenTree]) -> List[VerificationResult]:
        _observe_verify("fused", trees)
        with TRACER.span("repro.verify.fused", requests=len(trees),
                         mode=self.mode):
            return self._verifier.verify_batch(
                list(trees), [state.cache for state in states]
            )


class IncrementalBackend(VerificationBackend):
    """Algorithm 1 as the degenerate one-node tree.

    The speculate phase hands this backend a bare root (the pending token);
    verification is a single ``model.decode`` of that root — committing its
    KV row — followed by one sample, which plays the bonus-token role.
    Incremental decoding thereby stops being a parallel code path: it is
    the tree pipeline with tree size one and nothing to reject.
    """

    def __init__(self, model: TransformerLM):
        self.model = model

    def verify(self, states: Sequence[DecodeState],
               trees: Sequence[TokenTree]) -> List[VerificationResult]:
        _observe_verify("incremental", trees)
        with TRACER.span("repro.verify.incremental", requests=len(trees)):
            results: List[VerificationResult] = []
            for state, tree in zip(states, trees):
                logits = self.model.decode(tree.root.token, state.cache)
                token = int(sample_token(logits, state.sampling, state.rng))
                results.append(
                    VerificationResult(
                        accepted_tokens=[token],
                        accepted_nodes=[0],
                        bonus_token=token,
                        num_candidates_considered=1,
                    )
                )
            return results


# -- the pipeline ------------------------------------------------------------------


@dataclass
class TickOutcome:
    """What one pipeline tick did to one decode state.

    Attributes:
        state: The state the outcome describes.
        emitted: Tokens appended to the request's output this tick — the
            per-session committed-token *delta*, so streaming consumers
            (the serving gateway) forward tokens without re-diffing state.
        advanced: Whether a verification step ran (exactly when a new
            :class:`StepTrace` was recorded).
        retired: Whether the fitter found no room this tick (the state's
            ``retired`` flag is set; it will report ``finished``).
        committed_total: Tokens the state has committed *after* this tick
            (``len(state.tokens)``) — the stream position the delta ends
            at, stable across preemption re-incarnations.
        finished: Whether the state reports finished after this tick (EOS,
            budget, or retirement).
    """

    state: DecodeState
    emitted: List[int] = field(default_factory=list)
    advanced: bool = False
    retired: bool = False
    committed_total: int = 0
    finished: bool = False


class DecodePipeline:
    """The canonical per-iteration decode loop.

    One :meth:`tick` advances a batch of :class:`DecodeState`s by exactly
    one LLM iteration: speculate a tree per request (a one-node tree for
    incremental states), fit each tree to its cache, verify the survivors
    through the configured :class:`VerificationBackend`, then commit —
    record the trace, emit accepted tokens, advance the speculator.

    Args:
        model: The LLM (sizes the tree fitter).
        backend: The verification backend; defaults to
            :class:`PerRequestBackend` over ``model``.
        injector: Optional :class:`~repro.faults.FaultInjector`.  When set,
            speculation and verification faults can fire each tick; the
            affected tick *degrades* to incremental decoding (a one-node
            tree per state, verified by :class:`IncrementalBackend`) instead
            of crashing, and speculation re-enables after
            ``fallback_cooldown`` clean ticks.  Under greedy verification
            degraded ticks emit exactly the tokens the speculative path
            would — the fallback is lossless, just slower.
        fallback_cooldown: Clean (degraded) ticks served after a fault
            before speculation resumes.
        packed_speculation: Score all requests' draft trees through one
            batched GEMM per tree level (:class:`PackedSpeculator`) instead
            of per-session SSM decode loops.  Bit-identical trees; requests
            the packer cannot handle (stochastic decoding, merge-based or
            adaptive speculators, near-end-of-context caches) silently use
            the per-session loop.
        planner: Optional :class:`~repro.speculate.planner.TreePlanner`
            consulted once per tick, before speculation.  The plan's
            expansion profile overrides every speculative state's static
            configuration for that tick; a budget-0 plan runs the tick as
            Algorithm-1 incremental decoding (one-node trees through
            :class:`IncrementalBackend`) until the planner's cooldown
            re-probes speculation.  Under greedy verification the emitted
            tokens are identical for every plan — the planner only moves
            tokens-per-step, never content.
        router: Optional :class:`~repro.speculate.router.SpeculatorRouter`.
            When set, ticks that speculated feed each routed state's
            acceptance outcome back per request (through ``state.route``),
            and the planner's acceptance input becomes the mean of the live
            routed members' estimates.  Fault-degraded and
            planned-incremental ticks feed nothing — the same skip the
            global planner estimator gets.  Routing never changes greedy
            output: the verifier emits the LLM's greedy continuation
            whichever member drafted.
    """

    def __init__(self, model: TransformerLM,
                 backend: Optional[VerificationBackend] = None,
                 injector: Optional["FaultInjector"] = None,
                 fallback_cooldown: int = 3,
                 packed_speculation: bool = True,
                 planner: Optional["TreePlanner"] = None,
                 router: Optional["SpeculatorRouter"] = None):
        if fallback_cooldown < 0:
            raise ValueError("fallback_cooldown must be >= 0")
        self.model = model
        self.backend = backend if backend is not None else PerRequestBackend(model)
        self.injector = injector
        self.fallback_cooldown = fallback_cooldown
        self.fitter = TreeFitter(model.config.max_seq_len)
        self.recorder = TraceRecorder()
        self.packed = PackedSpeculator() if packed_speculation else None
        self.planner = planner
        self.router = router
        self._fallback_backend = IncrementalBackend(model)
        self._fallback_remaining = 0
        self._tick_plan = None
        self._ticks = 0

    # -- fault fallback ------------------------------------------------------------

    @property
    def speculation_suppressed(self) -> bool:
        """Whether the pipeline is currently in incremental fallback mode."""
        return self._fallback_remaining > 0

    def _enter_fallback(self, cause: str) -> None:
        self._fallback_remaining = self.fallback_cooldown
        _FALLBACK_ENTRIES.inc()
        TRACER.event("repro.engine.fallback", cause=cause,
                     cooldown=self.fallback_cooldown, iteration=self._ticks)

    # -- routing -------------------------------------------------------------------

    def _routed_alpha(self, live: Sequence[DecodeState]) -> Optional[float]:
        """Mean acceptance estimate of the live batch's routed members.

        ``None`` (planner falls back to its own global estimator) when no
        router is attached or no live state carries a route assignment.
        """
        if self.router is None:
            return None
        total = 0.0
        count = 0
        for state in live:
            if state.route is not None:
                total += self.router.alpha_for(state.route.member)
                count += 1
        if count == 0:
            return None
        return total / count

    # -- phases --------------------------------------------------------------------

    def _speculate_tree(self, state: DecodeState) -> TokenTree:
        """This iteration's raw (unfitted) token tree for one state."""
        if state.speculator is None:
            return TokenTree(state.pending)
        return state.speculator.speculate(
            state.pending,
            stochastic=not state.sampling.greedy,
            rng=state.rng,
            plan=self._tick_plan,
        )

    def _fit_tree(self, state: DecodeState,
                  tree: TokenTree) -> Optional[TokenTree]:
        """Fit one raw tree; marks the state retired when nothing fits."""
        fitted = self.fitter.fit(tree, state.cache)
        if fitted is None:
            state.retired = True
            _RETIRED.inc()
        elif fitted is not tree:
            _TREES_PRUNED.inc()
        return fitted

    def speculate(self, state: DecodeState) -> Optional[TokenTree]:
        """Phases 1+2 for one state: speculate, then fit to the cache.

        Returns ``None`` — and marks the state retired — when the request
        cannot decode further (context exhausted).  Single-state surface
        used by the sessions' two-phase stepping; :meth:`tick` runs the
        same two phases batch-wide under their own trace spans.
        """
        return self._fit_tree(state, self._speculate_tree(state))

    def commit(self, state: DecodeState, tree: TokenTree,
               verification: VerificationResult,
               incremental_shape: bool = False) -> List[int]:
        """Phase 3: record the outcome and advance the request's state."""
        self.recorder.record(state, tree, verification,
                             incremental_shape=incremental_shape)
        emitted = state.emit(verification.accepted_tokens)
        previous_pending = state.pending
        state.pending = int(verification.bonus_token)
        if state.speculator is not None and not state.finished:
            # Accepted speculated tokens (all but the bonus) extend the
            # verified prefix; the pending token itself was committed by
            # the verifier's cache compaction.
            state.speculator.advance(
                [previous_pending] + verification.accepted_tokens[:-1]
            )
        return emitted

    # -- the loop ------------------------------------------------------------------

    @hot_path
    def tick(self, states: Sequence[DecodeState]) -> List[TickOutcome]:
        """One canonical iteration over a batch of decode states.

        Each of the four phases runs batch-wide under its own trace span
        (``repro.engine.speculate`` / ``fit`` / ``verify`` / ``commit``),
        nested in one ``repro.engine.tick`` span per iteration; phase
        latencies land in the ``*.host_seconds`` registry histograms.
        """
        _TICKS.inc()
        outcomes = [TickOutcome(state=state) for state in states]
        allocs_before = perf.COUNTERS.hot_alloc_events
        with TRACER.span("repro.engine.tick", iteration=self._ticks,
                         batch=len(states)) as tick_span:
            self._ticks += 1

            # Fault fallback: a tick is degraded when a previous fault's
            # cooldown is still draining, or when a speculation fault fires
            # now.  Degraded ticks speculate the one-node tree (Algorithm 1)
            # for every state and verify through the incremental backend.
            degraded = self._fallback_remaining > 0
            entered = False
            can_speculate = any(
                s.speculator is not None and not s.finished for s in states
            )
            if not degraded and can_speculate and self.injector is not None:
                try:
                    self.injector.maybe_fail(FaultKind.SPECULATION,
                                             iteration=self._ticks - 1)
                except FaultError:
                    self._enter_fallback("speculation")
                    degraded = entered = True

            # Dynamic tree planning: one budget/shape decision for the whole
            # tick, solved against the live batch size and context depth.
            # Fault-degraded ticks skip planning (no speculation will run);
            # a budget-0 plan runs this tick as Algorithm-1 incremental.
            plan = None
            if self.planner is not None and can_speculate and not degraded:
                live = [
                    s for s in states
                    if s.speculator is not None and not s.finished
                ]
                context_len = max(s.cache.length for s in live)
                routed_alpha = self._routed_alpha(live)
                if routed_alpha is not None:
                    plan = self.planner.plan(len(live),
                                             context_len=context_len,
                                             alpha=routed_alpha)
                else:
                    # No routed states: the planner falls back to its own
                    # global estimator (and planner doubles need not grow
                    # an ``alpha`` parameter).
                    plan = self.planner.plan(len(live),
                                             context_len=context_len)
            planned_incremental = plan is not None and not plan.speculative
            self._tick_plan = plan if not planned_incremental else None

            with TRACER.span("repro.engine.speculate") as span:
                raw: List[Optional[TokenTree]] = [None] * len(states)
                todo: List[int] = []
                for i, state in enumerate(states):
                    if state.finished:
                        outcomes[i].retired = state.retired
                    elif degraded or planned_incremental:
                        raw[i] = TokenTree(state.pending)
                    else:
                        todo.append(i)
                if todo and self.packed is not None:
                    for i, tree in zip(todo, self.packed.speculate_batch(
                        [states[i] for i in todo], self._speculate_tree,
                        plan=self._tick_plan,
                    )):
                        raw[i] = tree
                else:
                    for i in todo:
                        raw[i] = self._speculate_tree(states[i])
                self._tick_plan = None
                nodes = sum(len(t) for t in raw if t is not None)
                _SPECULATED_NODES.inc(nodes)
                span.set(trees=sum(t is not None for t in raw), nodes=nodes)

            with TRACER.span("repro.engine.fit") as span:
                active: List[DecodeState] = []
                trees: List[TokenTree] = []
                slots: List[int] = []
                for i, (state, tree) in enumerate(zip(states, raw)):
                    if tree is None:
                        continue
                    fitted = self._fit_tree(state, tree)
                    if fitted is None:
                        outcomes[i].retired = True
                        continue
                    active.append(state)
                    trees.append(fitted)
                    slots.append(i)
                span.set(
                    fitted=len(trees),
                    retired=sum(
                        o.retired for o, t in zip(outcomes, raw)
                        if t is not None
                    ),
                    nodes=sum(len(t) for t in trees),
                )

            with TRACER.span("repro.engine.verify", requests=len(active),
                             tokens=sum(len(t) for t in trees)):
                if active and not degraded and self.injector is not None:
                    try:
                        self.injector.maybe_fail(FaultKind.VERIFICATION,
                                                 iteration=self._ticks - 1)
                    except FaultError:
                        # The backend is down this tick: discard the
                        # speculated trees (nothing touched the caches yet)
                        # and decode each pending token incrementally.
                        self._enter_fallback("verification")
                        degraded = entered = True
                        trees = [TokenTree(s.pending) for s in active]
                incremental = degraded or planned_incremental
                backend = self._fallback_backend if incremental else self.backend
                results = backend.verify(active, trees) if active else []

            with TRACER.span("repro.engine.commit") as span:
                emitted_total = 0
                for i, state, tree, result in zip(slots, active, trees,
                                                  results):
                    outcomes[i].emitted = self.commit(
                        state, tree, result, incremental_shape=incremental
                    )
                    outcomes[i].advanced = True
                    emitted_total += len(outcomes[i].emitted)
                _TOKENS_EMITTED.inc(emitted_total)
                span.set(steps=len(results), tokens_emitted=emitted_total)

            if not degraded and not planned_incremental:
                # Acceptance evidence — only from ticks that actually
                # speculated: fault-degraded and planned-incremental ticks
                # ran Algorithm 1, so they must feed neither the router's
                # per-member estimators nor the planner's global EWMA.  Per
                # request, the accepted speculated tokens, and whether the
                # accepted path ended by rejection (its tip still had
                # children in the fitted tree) rather than by consuming the
                # whole tree.
                if self.router is not None:
                    for state, tree, result in zip(active, trees, results):
                        if state.speculator is None or state.route is None:
                            continue
                        stop = (1 if tree.nodes[result.accepted_nodes[-1]]
                                .children else 0)
                        self.router.observe(
                            state.route,
                            result.num_accepted_speculated, stop,
                        )
                elif plan is not None and plan.speculative:
                    accepted = 0
                    stops = 0
                    for state, tree, result in zip(active, trees, results):
                        if state.speculator is None:
                            continue
                        accepted += result.num_accepted_speculated
                        if tree.nodes[result.accepted_nodes[-1]].children:
                            stops += 1
                    self.planner.observe(accepted, stops)

            if degraded:
                _FALLBACK_TICKS.inc()
                if not entered:
                    self._fallback_remaining -= 1
            allocs = perf.COUNTERS.hot_alloc_events - allocs_before
            _TICK_ALLOCS.inc(allocs)
            tick_span.set(advanced=len(results), tokens_emitted=emitted_total,
                          degraded=degraded, allocs=allocs)
            if plan is not None:
                tick_span.set(planner_budget=plan.budget,
                              planner_alpha=round(plan.alpha, 6))
        for outcome in outcomes:
            outcome.committed_total = len(outcome.state.tokens)
            outcome.finished = outcome.state.finished
        return outcomes

    def run_to_completion(self, state: DecodeState) -> DecodeState:
        """Drive one state until it finishes (the offline-engine loop)."""
        while not state.finished:
            if not self.tick([state])[0].advanced:
                break
        return state
