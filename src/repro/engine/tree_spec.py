"""SpecInfer engine: tree-based speculative inference + verification (Alg. 2).

A thin adapter over the unified :class:`~repro.engine.pipeline.DecodePipeline`:
``generate`` builds one :class:`~repro.engine.pipeline.DecodeState` and
drives it to completion through a
:class:`~repro.engine.pipeline.PerRequestBackend` (speculation and
verification share the request's seeded RNG, so stochastic runs replay).

Greedy mode emits *exactly* the incremental-decoding sequence; stochastic
mode emits tokens from exactly the LLM's distribution (Theorem 4.2).  The
win is fewer LLM steps: each iteration emits ``1 + #accepted`` tokens.
"""

from __future__ import annotations

from typing import Optional, Sequence

from repro.engine.generation import GenerationConfig, GenerationResult
from repro.engine.pipeline import (
    DecodePipeline,
    DecodeState,
    PerRequestBackend,
    prune_to_size as _prune_to_size,  # re-export: legacy import site
)
from repro.model.transformer import TransformerLM
from repro.speculate.speculator import Speculator

__all__ = ["SpecInferEngine", "_prune_to_size"]


class SpecInferEngine:
    """Tree-based speculative inference engine.

    Args:
        model: The LLM (verifier).
        speculator: The learning-based speculator (one or more SSMs).
        use_naive_sampling: Use the naive-sampling baseline instead of MSS
            for stochastic verification (Table 3's comparison arm).
    """

    def __init__(
        self,
        model: TransformerLM,
        speculator: Speculator,
        use_naive_sampling: bool = False,
    ):
        self.model = model
        self.speculator = speculator
        self.use_naive_sampling = use_naive_sampling

    def generate(
        self,
        prompt: Sequence[int],
        config: Optional[GenerationConfig] = None,
    ) -> GenerationResult:
        """Generate a completion for ``prompt`` with Algorithm 2."""
        state = DecodeState(
            self.model, prompt, config or GenerationConfig(),
            speculator=self.speculator,
        )
        pipeline = DecodePipeline(
            self.model,
            PerRequestBackend(
                self.model, use_naive_sampling=self.use_naive_sampling
            ),
        )
        return pipeline.run_to_completion(state).to_result()
