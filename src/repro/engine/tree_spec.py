"""SpecInfer engine: tree-based speculative inference + verification (Alg. 2).

Per iteration:

1. the :class:`~repro.speculate.speculator.Speculator` expands a token tree
   rooted at the pending token,
2. the :class:`~repro.verify.verifier.TokenTreeVerifier` scores the whole
   tree in one LLM pass (tree-parallel decoding) and verifies it (greedy or
   multi-step speculative sampling),
3. the accepted path is committed to the LLM's KV cache, the speculator's
   caches advance, and the bonus token seeds the next iteration.

Greedy mode emits *exactly* the incremental-decoding sequence; stochastic
mode emits tokens from exactly the LLM's distribution (Theorem 4.2).  The
win is fewer LLM steps: each iteration emits ``1 + #accepted`` tokens.
"""

from __future__ import annotations

from typing import Optional, Sequence

import numpy as np

from repro.engine.generation import GenerationConfig, GenerationResult, StepTrace
from repro.model.transformer import TransformerLM
from repro.speculate.speculator import Speculator
from repro.verify.verifier import TokenTreeVerifier


class SpecInferEngine:
    """Tree-based speculative inference engine.

    Args:
        model: The LLM (verifier).
        speculator: The learning-based speculator (one or more SSMs).
        use_naive_sampling: Use the naive-sampling baseline instead of MSS
            for stochastic verification (Table 3's comparison arm).
    """

    def __init__(
        self,
        model: TransformerLM,
        speculator: Speculator,
        use_naive_sampling: bool = False,
    ):
        self.model = model
        self.speculator = speculator
        self.use_naive_sampling = use_naive_sampling

    def generate(
        self,
        prompt: Sequence[int],
        config: Optional[GenerationConfig] = None,
    ) -> GenerationResult:
        """Generate a completion for ``prompt`` with Algorithm 2."""
        config = config or GenerationConfig()
        prompt_arr = np.asarray(list(prompt), dtype=np.intp)
        if prompt_arr.size == 0:
            raise ValueError("prompt must be non-empty")
        rng = np.random.default_rng(config.seed)
        verifier = TokenTreeVerifier(
            self.model,
            sampling=config.sampling,
            rng=rng,
            use_naive_sampling=self.use_naive_sampling,
        )
        result = GenerationResult(prompt=prompt_arr)
        cache = self.model.new_cache()
        self.speculator.reset()
        if prompt_arr.size > 1:
            self.model.prefill(prompt_arr[:-1], cache)
            self.speculator.prefill(prompt_arr[:-1])
        pending = int(prompt_arr[-1])
        eos = self.model.config.eos_token_id
        stochastic = not config.sampling.greedy
        while len(result.tokens) < config.max_new_tokens:
            tree = self.speculator.speculate(
                pending, stochastic=stochastic, rng=rng
            )
            tree = self._fit_tree_to_cache(tree, cache)
            if tree is None:
                break
            verification = verifier.verify_step(tree, cache)
            accepted = verification.accepted_tokens
            leaves = [i for i in range(len(tree)) if tree.is_leaf(i)]
            path_tokens = sum(len(tree.path_to(i)) for i in leaves)
            result.steps.append(
                StepTrace(
                    llm_tokens_scored=len(tree),
                    tokens_emitted=len(accepted),
                    ssm_steps=self.speculator.speculation_latency_steps(),
                    tree_size=len(tree),
                    tree_depth=tree.max_depth(),
                    tree_leaves=len(leaves),
                    tree_path_tokens=path_tokens,
                    prefix_len=cache.length - len(verification.accepted_nodes),
                    num_rejections=verification.num_rejections,
                )
            )
            stop = False
            for token in accepted:
                result.tokens.append(int(token))
                if config.stop_on_eos and token == eos:
                    result.finished_by_eos = True
                    stop = True
                    break
                if len(result.tokens) >= config.max_new_tokens:
                    stop = True
                    break
            if stop:
                break
            # Accepted speculated tokens (all but the bonus) extend the
            # verified prefix; the pending token itself was committed by the
            # verifier's cache compaction.
            self.speculator.advance([pending] + accepted[:-1])
            pending = verification.bonus_token
        result.tokens = result.tokens[: config.max_new_tokens]
        return result

    def _fit_tree_to_cache(self, tree, cache):
        """Ensure the tree fits in remaining capacity and position range.

        The verification pass appends ``len(tree)`` rows before compaction,
        and a node at depth d occupies position ``prefix + d``, so trees near
        end-of-context must shrink in both node count and depth; when not
        even the root fits, generation ends (the request hit its limit).
        """
        available = cache.capacity - cache.length
        max_depth = self.model.config.max_seq_len - 1 - cache.length
        if available < 1 or max_depth < 0:
            return None
        if len(tree) <= available and tree.max_depth() <= max_depth:
            return tree
        return _prune_to_size(tree, available, max_depth=max_depth)


def _prune_to_size(tree, limit: int, max_depth: int = None):
    """Keep up to ``limit`` nodes in BFS order, optionally bounding depth
    (root always survives)."""
    from repro.tree.token_tree import TokenTree

    keep = set()
    queue = [0]
    while queue and len(keep) < limit:
        idx = queue.pop(0)
        if max_depth is not None and tree.nodes[idx].depth > max_depth:
            continue
        keep.add(idx)
        queue.extend(tree.nodes[idx].children)
    pruned = TokenTree(tree.root.token)
    pruned.nodes[0].proposals = dict(tree.nodes[0].proposals)
    mapping = {0: 0}
    for idx in sorted(keep - {0}, key=lambda i: tree.path_to(i)):
        node = tree.nodes[idx]
        if node.parent not in mapping:
            continue
        new_idx = pruned.add_child(
            mapping[node.parent], node.token, ssm_id=None
        )
        pruned.nodes[new_idx].ssm_ids = set(node.ssm_ids)
        pruned.nodes[new_idx].proposals = dict(node.proposals)
        mapping[idx] = new_idx
    return pruned
