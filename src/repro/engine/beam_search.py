"""Beam search decoding.

Paper section 7: "SpecInfer supports beam search, top-k sampling, and top-p
sampling.  These techniques are orthogonal decoding optimizations and can
be combined with tree-based speculative decoding."  This module provides
the beam-search side of that claim: a standard length-normalized beam
decoder over the same transformer/KV-cache substrate.  (Top-k / top-p are
already first-class in :class:`~repro.model.sampling.SamplingConfig`.)

Each live beam owns a KV cache; at every step each beam proposes its
``beam_width`` best continuations, the global top ``beam_width``
hypotheses survive, and finished (EOS) hypotheses retire to a completed
pool scored with a length penalty.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional, Sequence

import numpy as np

from repro.model.layers import stable_softmax
from repro.model.transformer import TransformerLM


@dataclass
class BeamHypothesis:
    """One (possibly finished) beam."""

    tokens: List[int]
    log_prob: float
    finished: bool = False

    def score(self, length_penalty: float) -> float:
        """Length-normalized score: ``log_prob / len^penalty``."""
        denominator = max(1, len(self.tokens)) ** length_penalty
        return self.log_prob / denominator


@dataclass
class BeamSearchResult:
    """Outcome of one beam-search generation.

    Attributes:
        best: The highest-scoring hypothesis.
        hypotheses: All finished/surviving hypotheses, best first.
        num_llm_steps: Decoding iterations consumed.
    """

    best: BeamHypothesis
    hypotheses: List[BeamHypothesis] = field(default_factory=list)
    num_llm_steps: int = 0

    @property
    def tokens(self) -> List[int]:
        return self.best.tokens


class BeamSearchEngine:
    """Length-normalized beam search over a :class:`TransformerLM`."""

    def __init__(self, model: TransformerLM, beam_width: int = 4,
                 length_penalty: float = 1.0):
        if beam_width < 1:
            raise ValueError("beam_width must be >= 1")
        self.model = model
        self.beam_width = beam_width
        self.length_penalty = length_penalty

    def generate(self, prompt: Sequence[int],
                 max_new_tokens: int = 32) -> BeamSearchResult:
        """Run beam search; returns the best hypothesis and the full pool."""
        prompt_arr = np.asarray(list(prompt), dtype=np.intp)
        if prompt_arr.size == 0:
            raise ValueError("prompt must be non-empty")
        if max_new_tokens < 1:
            raise ValueError("max_new_tokens must be >= 1")
        eos = self.model.config.eos_token_id
        width = self.beam_width

        # Live beams: (tokens, log_prob, cache, pending_token).
        cache = self.model.new_cache()
        if prompt_arr.size > 1:
            self.model.prefill(prompt_arr[:-1], cache)
        live = [([], 0.0, cache, int(prompt_arr[-1]))]
        completed: List[BeamHypothesis] = []
        steps = 0

        for _ in range(max_new_tokens):
            if not live:
                break
            steps += 1
            candidates = []
            for tokens, log_prob, beam_cache, pending in live:
                if beam_cache.length + 1 > beam_cache.capacity:
                    completed.append(
                        BeamHypothesis(tokens=tokens, log_prob=log_prob,
                                       finished=False)
                    )
                    continue
                logits = self.model.decode(pending, beam_cache)
                log_probs = np.log(
                    np.clip(stable_softmax(logits), 1e-30, None)
                )
                top = np.argsort(log_probs)[::-1][:width]
                for token in top:
                    candidates.append(
                        (tokens, log_prob + float(log_probs[token]),
                         beam_cache, pending, int(token))
                    )
            if not candidates:
                break
            candidates.sort(key=lambda c: c[1], reverse=True)
            next_live = []
            # Group candidates per parent so each beam cache is forked the
            # minimal number of times (snapshot = the cache after decode).
            for tokens, log_prob, beam_cache, pending, token in \
                    candidates[: width * 2]:
                if len(next_live) >= width:
                    break
                new_tokens = tokens + [token]
                hypothesis_cache = self._fork(beam_cache)
                if token == eos:
                    completed.append(
                        BeamHypothesis(tokens=new_tokens, log_prob=log_prob,
                                       finished=True)
                    )
                    continue
                next_live.append((new_tokens, log_prob, hypothesis_cache,
                                  token))
            live = next_live
            if len(completed) >= width and not live:
                break

        completed.extend(
            BeamHypothesis(tokens=tokens, log_prob=log_prob)
            for tokens, log_prob, _, _ in live
        )
        if not completed:
            raise RuntimeError("beam search produced no hypotheses")
        completed.sort(key=lambda h: h.score(self.length_penalty),
                       reverse=True)
        return BeamSearchResult(
            best=completed[0], hypotheses=completed, num_llm_steps=steps
        )

    def _fork(self, cache) -> object:
        """Deep-copy a beam's KV cache (beams diverge after this step)."""
        import copy

        return copy.deepcopy(cache)
