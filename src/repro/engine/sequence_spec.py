"""Sequence-based speculative decoding baseline.

Prior speculative-decoding systems (Leviathan et al. 2022, Chen et al. 2023,
blockwise decoding) speculate a *single sequence* of tokens from one SSM and
verify it against the LLM in parallel.  In SpecInfer's formulation this is
exactly a token tree of width 1 — an expansion configuration ⟨1,1,…,1⟩ — so
the baseline is constructed as a configuration of the tree engine, which
also guarantees the comparison in Figure 7 isolates the *tree* contribution
(identical kernels, identical verification machinery, different tree shape).
"""

from __future__ import annotations

from typing import Sequence

from repro.engine.tree_spec import SpecInferEngine
from repro.model.transformer import TransformerLM
from repro.speculate.expansion import ExpansionConfig
from repro.speculate.speculator import Speculator


def make_sequence_spec_engine(
    model: TransformerLM,
    ssm,
    depth: int = 8,
    temperature: float = 1.0,
) -> SpecInferEngine:
    """Build a sequence-based speculative decoding engine.

    Args:
        model: The LLM (verifier).
        ssm: A single small speculative model.
        depth: Speculation length per step (paper uses 8).
        temperature: SSM proposal temperature.

    Returns:
        A :class:`SpecInferEngine` whose speculator emits width-1 trees.
    """
    speculator = Speculator(
        [ssm],
        config=ExpansionConfig.sequence(depth),
        temperature=temperature,
    )
    return SpecInferEngine(model, speculator)
