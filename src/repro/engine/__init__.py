"""Decoding engines.

* :mod:`repro.engine.generation` -- shared request/result/trace types.
* :mod:`repro.engine.pipeline` -- the unified decode pipeline: the one
  speculate→fit→verify→commit loop every surface drives, with pluggable
  verification backends (per-request, fused, incremental).
* :mod:`repro.engine.incremental` -- Algorithm 1: one token per LLM step
  (what vLLM/TGI/FasterTransformer do; also "SpecInfer w/ incremental
  decoding" in Figure 7) — the pipeline's degenerate one-node-tree case.
* :mod:`repro.engine.tree_spec` -- Algorithm 2: SpecInfer's tree-based
  speculative inference and verification loop.
* :mod:`repro.engine.sequence_spec` -- sequence-based speculative decoding
  baseline (a width-1 token tree), per Leviathan et al. / Chen et al.
"""

from repro.engine.generation import (
    GenerationConfig,
    GenerationResult,
    StepTrace,
)
from repro.engine.batched import BatchedTreeVerifier
from repro.engine.beam_search import BeamSearchEngine, BeamSearchResult
from repro.engine.incremental import IncrementalEngine
from repro.engine.pipeline import (
    DecodePipeline,
    DecodeState,
    FusedBackend,
    IncrementalBackend,
    PerRequestBackend,
    TickOutcome,
    TraceRecorder,
    TreeFitter,
    VerificationBackend,
    prune_to_size,
)
from repro.engine.tree_spec import SpecInferEngine
from repro.engine.sequence_spec import make_sequence_spec_engine

__all__ = [
    "GenerationConfig",
    "GenerationResult",
    "StepTrace",
    "IncrementalEngine",
    "SpecInferEngine",
    "make_sequence_spec_engine",
    "BatchedTreeVerifier",
    "BeamSearchEngine",
    "BeamSearchResult",
    "DecodePipeline",
    "DecodeState",
    "TickOutcome",
    "TraceRecorder",
    "TreeFitter",
    "VerificationBackend",
    "PerRequestBackend",
    "FusedBackend",
    "IncrementalBackend",
    "prune_to_size",
]
