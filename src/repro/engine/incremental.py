"""Incremental decoding engine (Algorithm 1).

The baseline every existing serving system implements: prefill the prompt,
then generate one token per LLM step.  This is also the reference whose
output SpecInfer must reproduce exactly under greedy decoding (and in
distribution under stochastic decoding).

Implemented as the unified pipeline's degenerate case: a
:class:`~repro.engine.pipeline.DecodeState` with no speculator driven
through the :class:`~repro.engine.pipeline.IncrementalBackend`, so there is
no separate incremental loop to keep in sync with Algorithm 2.
"""

from __future__ import annotations

from typing import Optional, Sequence

from repro.engine.generation import GenerationConfig, GenerationResult
from repro.engine.pipeline import (
    DecodePipeline,
    DecodeState,
    IncrementalBackend,
)
from repro.model.transformer import TransformerLM


class IncrementalEngine:
    """Serves requests with plain autoregressive decoding."""

    def __init__(self, model: TransformerLM):
        self.model = model

    def generate(
        self,
        prompt: Sequence[int],
        config: Optional[GenerationConfig] = None,
    ) -> GenerationResult:
        """Generate a completion for ``prompt`` (Algorithm 1).

        The prompt's last token is held out as the first "pending" token so
        prefill and decode stages mirror the speculative engines exactly.
        """
        state = DecodeState(self.model, prompt, config or GenerationConfig())
        pipeline = DecodePipeline(self.model, IncrementalBackend(self.model))
        return pipeline.run_to_completion(state).to_result()
