"""Incremental decoding engine (Algorithm 1).

The baseline every existing serving system implements: prefill the prompt,
then generate one token per LLM step.  This is also the reference whose
output SpecInfer must reproduce exactly under greedy decoding (and in
distribution under stochastic decoding).
"""

from __future__ import annotations

from typing import Optional, Sequence

import numpy as np

from repro.engine.generation import GenerationConfig, GenerationResult, StepTrace
from repro.model.sampling import sample_token
from repro.model.transformer import TransformerLM


class IncrementalEngine:
    """Serves requests with plain autoregressive decoding."""

    def __init__(self, model: TransformerLM):
        self.model = model

    def generate(
        self,
        prompt: Sequence[int],
        config: Optional[GenerationConfig] = None,
    ) -> GenerationResult:
        """Generate a completion for ``prompt`` (Algorithm 1).

        The prompt's last token is held out as the first "pending" token so
        prefill and decode stages mirror the speculative engines exactly.
        """
        config = config or GenerationConfig()
        prompt_arr = np.asarray(list(prompt), dtype=np.intp)
        if prompt_arr.size == 0:
            raise ValueError("prompt must be non-empty")
        rng = np.random.default_rng(config.seed)
        result = GenerationResult(prompt=prompt_arr)
        cache = self.model.new_cache()
        if prompt_arr.size > 1:
            self.model.prefill(prompt_arr[:-1], cache)
        pending = int(prompt_arr[-1])
        eos = self.model.config.eos_token_id
        while len(result.tokens) < config.max_new_tokens:
            if cache.length + 1 >= cache.capacity:
                break
            prefix_len = cache.length
            logits = self.model.decode(pending, cache)
            token = sample_token(logits, config.sampling, rng)
            result.tokens.append(token)
            result.steps.append(
                StepTrace(
                    llm_tokens_scored=1,
                    tokens_emitted=1,
                    prefix_len=prefix_len,
                )
            )
            if config.stop_on_eos and token == eos:
                result.finished_by_eos = True
                break
            pending = token
        return result
