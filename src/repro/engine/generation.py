"""Shared generation types: configs, per-step traces, results.

The :class:`StepTrace` records are the interface between the algorithmic
layer (which decides *how many* LLM/SSM steps a request needs and how large
each verification pass is) and the cluster cost model (which converts those
counts into simulated wall-clock latency on modeled hardware).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional

import numpy as np

from repro.model.sampling import SamplingConfig


@dataclass(frozen=True)
class GenerationConfig:
    """Bounds and decoding mode for one generation run.

    Attributes:
        max_new_tokens: Hard cap on generated tokens (the paper truncates at
            128 — SpecInfer can overshoot within a step, then truncates).
        sampling: Greedy or stochastic decoding configuration.
        stop_on_eos: Whether to stop at the model's EOS token.
        seed: RNG seed for stochastic decoding.
    """

    max_new_tokens: int = 128
    sampling: SamplingConfig = field(default_factory=lambda: SamplingConfig(greedy=True))
    stop_on_eos: bool = True
    seed: int = 0

    def __post_init__(self) -> None:
        if self.max_new_tokens < 1:
            raise ValueError(
                f"max_new_tokens must be >= 1, got {self.max_new_tokens}"
            )


@dataclass
class StepTrace:
    """Cost-relevant facts about one LLM decoding step.

    Attributes:
        llm_tokens_scored: Token positions the LLM processed this step
            (1 for incremental decoding; tree size for tree verification).
        tokens_emitted: Verified tokens appended to the output this step.
        ssm_steps: Sequential SSM decode steps spent speculating (0 for
            incremental decoding).
        tree_size: Nodes in the speculated tree (0 for incremental).
        tree_depth: Depth of the speculated tree.
        tree_leaves: Root-to-leaf sequences in the tree — the kernel count
            sequence-based decoding would need (Figure 11).
        tree_path_tokens: Total tokens across all root-to-leaf sequences —
            what sequence-based decoding computes (> tree_size when the
            tree branches, because shared prefixes are recomputed).
        prefix_len: Verified sequence length when the step began.
        num_rejections: Stochastic verification rejections in the step.
    """

    llm_tokens_scored: int
    tokens_emitted: int
    ssm_steps: int = 0
    tree_size: int = 0
    tree_depth: int = 0
    tree_leaves: int = 0
    tree_path_tokens: int = 0
    prefix_len: int = 0
    num_rejections: int = 0


@dataclass
class GenerationResult:
    """Output of one request's generation.

    Attributes:
        prompt: The input token ids.
        tokens: Generated token ids (prompt excluded), truncated to
            ``max_new_tokens`` and at EOS when configured.
        steps: Per-LLM-step traces, in order.
        finished_by_eos: Whether generation stopped at EOS.
    """

    prompt: np.ndarray
    tokens: List[int] = field(default_factory=list)
    steps: List[StepTrace] = field(default_factory=list)
    finished_by_eos: bool = False

    @property
    def num_llm_steps(self) -> int:
        """LLM decoding steps consumed — the quantity SpecInfer minimizes."""
        return len(self.steps)

    @property
    def num_tokens(self) -> int:
        return len(self.tokens)

    @property
    def mean_tokens_per_step(self) -> float:
        """Average verified tokens per decoding step (Table 2 metric)."""
        if not self.steps:
            return 0.0
        return float(np.mean([s.tokens_emitted for s in self.steps]))

    def tokens_per_step_series(self) -> np.ndarray:
        """Per-step emitted-token counts (Figure 9's CDF input)."""
        # lint: allow-dtype reporting series, not model tensors; CDF math wants double
        return np.array([s.tokens_emitted for s in self.steps], dtype=np.float64)


def clip_generated(
    tokens: List[int],
    config: GenerationConfig,
    eos_token_id: int,
) -> tuple:
    """Apply EOS and max-token truncation; returns ``(tokens, finished_by_eos)``."""
    out: List[int] = []
    finished = False
    for token in tokens:
        out.append(int(token))
        if config.stop_on_eos and token == eos_token_id:
            finished = True
            break
        if len(out) >= config.max_new_tokens:
            break
    return out[: config.max_new_tokens], finished
