"""Batched cross-request tree verification (one fused pass per iteration).

The serving runtime (section 5.1) advances a whole batch per iteration; the
real system verifies *all* requests' token trees in one fused kernel — the
per-iteration latency the cost model charges as a single step.  This module
realizes that at the NumPy level:

* the batch's tree tokens are concatenated into one ``forward_masked`` call,
* a **block-diagonal** mask combines each request's topology-aware causal
  mask (a request's tokens see its own prefix and ancestors, and nothing of
  any other request),
* a :class:`_ConcatLayerView` adapter scatters the produced keys/values back
  into each request's own cache, so per-request compaction (and everything
  downstream) is unchanged.

``verify_batch`` is bit-equivalent to per-request verification — tested —
and exists so batching fidelity is a property of the implementation, not an
assumption of the cost model.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Sequence, Tuple

import numpy as np

from repro.model.attention import NEG_INF
from repro.model.config import ModelConfig
from repro.model.sampling import SamplingConfig
from repro.model.transformer import TransformerLM
from repro.tree.masks import linearize, topology_causal_mask, tree_positions
from repro.tree.token_tree import TokenTree
from repro.verify.decode import TreeDecodeOutput
from repro.verify.greedy import verify_greedy
from repro.verify.naive import verify_naive_sampling
from repro.verify.result import VerificationResult
from repro.verify.stochastic import verify_stochastic


class _ConcatLayerView:
    """Presents several requests' caches as one layer to the transformer.

    ``append`` splits the batch's new rows back to the per-request caches;
    ``view`` concatenates every request's (prefix + new) rows in request
    order — the layout the combined mask is built against.
    """

    def __init__(self, layer_index: int, caches: Sequence,
                 new_counts: Sequence[int]):
        self._layer = layer_index
        self._caches = caches
        self._new_counts = list(new_counts)

    @property
    def length(self) -> int:
        return sum(c.layers[self._layer].length for c in self._caches)

    def append(self, keys: np.ndarray, values: np.ndarray) -> None:
        offset = 0
        for cache, count in zip(self._caches, self._new_counts):
            cache.layers[self._layer].append(
                keys[offset : offset + count],
                values[offset : offset + count],
            )
            offset += count
        if offset != keys.shape[0]:
            raise ValueError(
                f"appended {keys.shape[0]} rows but batch expects {offset}"
            )

    def view(self) -> Tuple[np.ndarray, np.ndarray]:
        keys = []
        values = []
        for cache in self._caches:
            k, v = cache.layers[self._layer].view()
            keys.append(k)
            values.append(v)
        return np.concatenate(keys, axis=0), np.concatenate(values, axis=0)


class _ConcatCache:
    """Cache façade over a batch of per-request caches.

    Only the surface ``forward_masked`` touches is provided (``length``,
    ``layers``); compaction happens afterwards on the real caches.
    """

    def __init__(self, config: ModelConfig, caches: Sequence,
                 new_counts: Sequence[int]):
        self._caches = list(caches)
        self.layers = [
            _ConcatLayerView(i, self._caches, new_counts)
            for i in range(config.n_layers)
        ]

    @property
    def length(self) -> int:
        return sum(c.length for c in self._caches)


@dataclass
class _BatchItem:
    tree: TokenTree
    cache: object
    lin: object
    prefix_len: int


class BatchedTreeVerifier:
    """Verifies many requests' token trees in one fused decoding pass.

    Args:
        model: The LLM.
        sampling: Decoding mode shared by the batch (greedy or stochastic).
        rng: Randomness for stochastic verification.
        use_naive_sampling: Swap MSS for the Table 3 baseline.
    """

    def __init__(
        self,
        model: TransformerLM,
        sampling: Optional[SamplingConfig] = None,
        rng: Optional[np.random.Generator] = None,
        use_naive_sampling: bool = False,
    ):
        self.model = model
        self.sampling = sampling or SamplingConfig(greedy=True)
        self.rng = rng or np.random.default_rng(0)
        self.use_naive_sampling = use_naive_sampling

    def verify_batch(
        self,
        trees: Sequence[TokenTree],
        caches: Sequence,
    ) -> List[VerificationResult]:
        """One fused decode over the batch, then per-request verification.

        Args:
            trees: One speculated tree per request.
            caches: The matching per-request KV caches (contiguous or
                paged); each is compacted to its accepted path on return.

        Returns:
            Per-request :class:`VerificationResult`, batch order.
        """
        if len(trees) != len(caches):
            raise ValueError(
                f"{len(trees)} trees but {len(caches)} caches"
            )
        if not trees:
            return []
        items = [
            _BatchItem(
                tree=tree,
                cache=cache,
                lin=linearize(tree),
                prefix_len=cache.length,
            )
            for tree, cache in zip(trees, caches)
        ]
        tokens, positions, mask = self._combine(items)
        concat = _ConcatCache(
            self.model.config, caches, [item.lin.num_tokens for item in items]
        )
        logits = self.model.forward_masked(tokens, positions, mask, concat)

        results: List[VerificationResult] = []
        row = 0
        for item in items:
            n = item.lin.num_tokens
            output = TreeDecodeOutput(
                lin=item.lin,
                logits=logits[row : row + n],
                prefix_len=item.prefix_len,
            )
            row += n
            result = self._verify(output, item.tree)
            accepted_slots = [
                item.lin.slot_of[node] for node in result.accepted_nodes
            ]
            item.cache.keep_rows(item.prefix_len, accepted_slots)
            results.append(result)
        return results

    # -- internals ------------------------------------------------------------------

    def _combine(self, items: Sequence[_BatchItem]):
        """Concatenated tokens/positions and the block-diagonal mask.

        Key columns are laid out per request as [prefix rows | new rows],
        requests in batch order — matching ``_ConcatLayerView.view``.
        """
        dtype = self.model.config.dtype
        tokens = np.concatenate([item.lin.tokens for item in items])
        positions = np.concatenate(
            [tree_positions(item.lin, item.prefix_len) for item in items]
        )
        n_total = int(tokens.shape[0])
        k_total = sum(item.prefix_len + item.lin.num_tokens for item in items)
        mask = np.full((n_total, k_total), NEG_INF, dtype=dtype)
        row = 0
        col = 0
        for item in items:
            n = item.lin.num_tokens
            width = item.prefix_len + n
            mask[row : row + n, col : col + width] = topology_causal_mask(
                item.lin, item.prefix_len, dtype=dtype
            )
            row += n
            col += width
        return tokens, positions, mask

    def _verify(self, output: TreeDecodeOutput,
                tree: TokenTree) -> VerificationResult:
        if self.sampling.greedy:
            return verify_greedy(output, tree)
        if self.use_naive_sampling:
            return verify_naive_sampling(output, tree, self.sampling,
                                         self.rng)
        return verify_stochastic(output, tree, self.sampling, self.rng)
