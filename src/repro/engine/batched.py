"""Batched cross-request tree verification (one fused pass per iteration).

The serving runtime (section 5.1) advances a whole batch per iteration; the
real system verifies *all* requests' token trees in one fused kernel — the
per-iteration latency the cost model charges as a single step.  This module
realizes that at the NumPy level with two interchangeable execution paths:

* **block-sparse** (default): the batch's tree tokens are concatenated into
  one :meth:`~repro.model.transformer.TransformerLM.forward_masked_blocks`
  call — QKV/MLP GEMMs batched across the whole batch, attention computed
  per request block against that request's own cache rows (zero-copy views;
  see :class:`~repro.model.arena.BatchArena`).  The cross-request score
  blocks, which are ``-inf`` by construction, are never computed and the
  dense ``(Σnᵢ, Σkᵢ)`` mask is never materialized: per-step cost is
  ``O(Σ nᵢ·kᵢ)`` instead of ``O((Σnᵢ)·(Σkᵢ))``.
* **dense** (reference): one ``forward_masked`` call under a block-diagonal
  mask over a :class:`_ConcatLayerView` façade that concatenates every
  request's keys/values per layer.  Kept as the equivalence baseline the
  tests compare against — it is the semantics, the block-sparse path is the
  fast implementation.

``verify_batch`` is bit-equivalent to per-request verification on either
path — tested — and exists so batching fidelity is a property of the
implementation, not an assumption of the cost model.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Sequence, Tuple

import numpy as np

from repro.model import perf
from repro.model.attention import NEG_INF, MaskScratch
from repro.model.config import ModelConfig
from repro.model.sampling import SamplingConfig
from repro.model.scratch import ScratchArena
from repro.model.transformer import TransformerLM
from repro.tree.masks import linearize, topology_causal_mask
from repro.tree.token_tree import TokenTree
from repro.verify.decode import TreeDecodeOutput
from repro.verify.greedy import verify_greedy
from repro.verify.naive import verify_naive_sampling
from repro.verify.precision import apply_precision, validate_precision
from repro.verify.result import VerificationResult
from repro.verify.stochastic import verify_stochastic


@dataclass
class _BatchItem:
    tree: TokenTree
    cache: object
    lin: object
    prefix_len: int


@dataclass(frozen=True)
class _BatchLayout:
    """Per-step batch geometry, computed once and passed down.

    Re-deriving lengths inside the layer loop costs O(batch) per access
    (and O(batch · layers) per step); everything the fused pass needs is a
    pure function of the batch composition, so it is computed here exactly
    once per iteration.

    Attributes:
        new_counts: Tree tokens per request.
        priors: Cache length per request on entry.
        row_offsets: Query-row start per request in the concatenated token
            axis (plus a final total — ``len == batch + 1``).
        col_offsets: Key-column start per request in the dense combined
            layout (``[prefix rows | new rows]`` per request, batch order).
        n_total: ``Σ new_counts``.
        k_total: ``Σ (priors + new_counts)``.
    """

    new_counts: Tuple[int, ...]
    priors: Tuple[int, ...]
    row_offsets: Tuple[int, ...]
    col_offsets: Tuple[int, ...]
    n_total: int
    k_total: int

    @classmethod
    def from_items(cls, items: Sequence[_BatchItem]) -> "_BatchLayout":
        new_counts = tuple(item.lin.num_tokens for item in items)
        priors = tuple(item.prefix_len for item in items)
        row_offsets = [0]
        col_offsets = [0]
        for count, prior in zip(new_counts, priors):
            row_offsets.append(row_offsets[-1] + count)
            col_offsets.append(col_offsets[-1] + prior + count)
        return cls(
            new_counts=new_counts,
            priors=priors,
            row_offsets=tuple(row_offsets),
            col_offsets=tuple(col_offsets),
            n_total=row_offsets[-1],
            k_total=col_offsets[-1],
        )

    @property
    def block_cells(self) -> int:
        """Score cells inside the per-request diagonal blocks."""
        return sum(
            n * (p + n) for n, p in zip(self.new_counts, self.priors)
        )

    @property
    def cross_cells(self) -> int:
        """Score cells *between* requests — masked to ``-inf`` always."""
        return self.n_total * self.k_total - self.block_cells


class _ConcatLayerView:
    """Presents several requests' caches as one layer to the transformer.

    ``append`` splits the batch's new rows back to the per-request caches;
    ``view`` concatenates every request's (prefix + new) rows in request
    order — the layout the combined mask is built against.  Part of the
    dense reference path; the copies it performs are counted so the
    benchmark can report what the block-sparse path saves.
    """

    def __init__(self, layer_index: int, caches: Sequence,
                 layout: _BatchLayout,
                 arena: Optional[ScratchArena] = None):
        self._layer = layer_index
        self._caches = caches
        self._layout = layout
        self._arena = arena
        self._appended = 0

    @property
    def length(self) -> int:
        return sum(self._layout.priors) + self._appended

    def append(self, keys: np.ndarray, values: np.ndarray) -> None:
        offset = 0
        for cache, count in zip(self._caches, self._layout.new_counts):
            cache.layers[self._layer].append(
                keys[offset : offset + count],
                values[offset : offset + count],
            )
            offset += count
        if offset != keys.shape[0]:
            raise ValueError(
                f"appended {keys.shape[0]} rows but batch expects {offset}"
            )
        self._appended += offset

    def view(self) -> Tuple[np.ndarray, np.ndarray]:
        keys = []
        values = []
        for cache in self._caches:
            k, v = cache.layers[self._layer].view()
            keys.append(k)
            values.append(v)
        total = sum(k.shape[0] for k in keys)
        if self._arena is not None and total:
            # Concatenate into persistent scratch views: the staging *copy*
            # still happens (and is still charged to kv_bytes_copied — it is
            # exactly the cost the block-sparse path removes) but the
            # staging *buffers* are reused across layers and steps, so the
            # dense path no longer also pays an allocation per layer per
            # step.  Trailing dims are bounded exactly so the views are
            # contiguous; successive layers overwrite the same two buffers,
            # which is safe because each layer's attention consumes its
            # concatenated K/V before the next layer's view() call.
            tail = keys[0].shape[1:]
            k_out = self._arena.take("dense.k", (total,) + tail,
                                     keys[0].dtype, bound=(0,) + tail)
            v_out = self._arena.take("dense.v", (total,) + tail,
                                     values[0].dtype, bound=(0,) + tail)
            stacked = (np.concatenate(keys, axis=0, out=k_out),
                       np.concatenate(values, axis=0, out=v_out))
        else:
            stacked = (
                np.concatenate(keys, axis=0),  # lint: allow-alloc scratch reuse disabled; copy perf-counted below
                np.concatenate(values, axis=0),  # lint: allow-alloc scratch reuse disabled; copy perf-counted below
            )
        perf.add_kv_copy(stacked[0].nbytes + stacked[1].nbytes)
        return stacked


class _ConcatCache:
    """Cache façade over a batch of per-request caches (dense path).

    Only the surface ``forward_masked`` touches is provided (``length``,
    ``layers``); compaction happens afterwards on the real caches.
    """

    def __init__(self, config: ModelConfig, caches: Sequence,
                 layout: _BatchLayout,
                 arena: Optional[ScratchArena] = None):
        self._length = sum(layout.priors)
        self.layers = [
            _ConcatLayerView(i, list(caches), layout, arena=arena)
            for i in range(config.n_layers)
        ]

    @property
    def length(self) -> int:
        return self._length


class BatchedTreeVerifier:
    """Verifies many requests' token trees in one fused decoding pass.

    Args:
        model: The LLM.
        sampling: Decoding mode shared by the batch (greedy or stochastic).
        rng: Randomness for stochastic verification.
        use_naive_sampling: Swap MSS for the Table 3 baseline.
        mode: ``"block"`` (default) runs the block-sparse fused path;
            ``"dense"`` runs the reference dense-fused path (one combined
            block-diagonal mask over concatenated caches).  Both produce
            identical :class:`VerificationResult`s.
        reuse_scratch: Reuse one :class:`ScratchArena` of persistent
            token/position/mask/QKV/attention/logits buffers across
            iterations, making the steady-state fused tick allocation-free
            (``repro.engine.tick.allocs == 0``).  ``False`` allocates fresh
            buffers every call — bit-identical results, exercised by the
            scratch on/off equivalence suite.
        precision: ``"fp32"`` (exact), ``"fp16"`` or ``"int8"`` — simulate
            reduced-precision draft scoring on the verification logits.
            Requires a greedy sampling config; committed tokens stay
            bit-identical to fp32 (see :mod:`repro.verify.precision`).
    """

    MODES = ("block", "dense")

    def __init__(
        self,
        model: TransformerLM,
        sampling: Optional[SamplingConfig] = None,
        rng: Optional[np.random.Generator] = None,
        use_naive_sampling: bool = False,
        mode: str = "block",
        reuse_scratch: bool = True,
        precision: str = "fp32",
    ):
        if mode not in self.MODES:
            raise ValueError(
                f"mode must be one of {self.MODES}, got {mode!r}"
            )
        self.model = model
        self.sampling = sampling or SamplingConfig(greedy=True)
        self.rng = rng or np.random.default_rng(0)
        self.use_naive_sampling = use_naive_sampling
        self.mode = mode
        validate_precision(precision, self.sampling.greedy)
        self.precision = precision
        self.reuse_scratch = reuse_scratch
        # One arena backs every persistent per-step buffer: index vectors,
        # per-batch-slot topology masks (block path), the combined
        # block-diagonal mask and concatenated-K/V staging (dense path),
        # and the model's QKV/attention/logits staging.  Reused across
        # iterations so the steady state allocates no tracked buffers.
        self._arena: Optional[ScratchArena] = (
            ScratchArena() if reuse_scratch else None
        )
        self._mask_scratches: List[MaskScratch] = []
        self._dense_scratch = (
            MaskScratch(model.config.dtype, arena=self._arena,
                        tag="dense_mask")
            if reuse_scratch else None
        )

    def verify_batch(
        self,
        trees: Sequence[TokenTree],
        caches: Sequence,
    ) -> List[VerificationResult]:
        """One fused decode over the batch, then per-request verification.

        Args:
            trees: One speculated tree per request.
            caches: The matching per-request KV caches (contiguous, arena
                or paged); each is compacted to its accepted path on return.

        Returns:
            Per-request :class:`VerificationResult`, batch order.
        """
        if len(trees) != len(caches):
            raise ValueError(
                f"{len(trees)} trees but {len(caches)} caches"
            )
        if not trees:
            return []
        items = [
            _BatchItem(
                tree=tree,
                cache=cache,
                lin=linearize(tree),
                prefix_len=cache.length,
            )
            for tree, cache in zip(trees, caches)
        ]
        layout = _BatchLayout.from_items(items)
        if self.mode == "dense":
            logits = self._decode_dense(items, caches, layout)
        else:
            logits = self._decode_blocks(items, caches, layout)
        logits = apply_precision(logits, self.precision)

        results: List[VerificationResult] = []
        for i, item in enumerate(items):
            output = TreeDecodeOutput(
                lin=item.lin,
                logits=logits[layout.row_offsets[i] : layout.row_offsets[i + 1]],
                prefix_len=item.prefix_len,
            )
            result = self._verify(output, item.tree)
            accepted_slots = [
                item.lin.slot_of[node] for node in result.accepted_nodes
            ]
            item.cache.keep_rows(item.prefix_len, accepted_slots)
            results.append(result)
        return results

    # -- internals ------------------------------------------------------------------

    def _gather_inputs(self, items: Sequence[_BatchItem],
                       layout: _BatchLayout) -> Tuple[np.ndarray, np.ndarray]:
        """The batch's tokens and depth-based positions, written into
        reused arena views (no per-step concatenation)."""
        if self._arena is not None:
            tokens = self._arena.take("tokens", (layout.n_total,), np.intp)
            positions = self._arena.take("positions", (layout.n_total,),
                                         np.intp)
        else:
            tokens = np.empty(layout.n_total, dtype=np.intp)
            positions = np.empty(layout.n_total, dtype=np.intp)
        for i, item in enumerate(items):
            lo, hi = layout.row_offsets[i], layout.row_offsets[i + 1]
            tokens[lo:hi] = item.lin.tokens
            positions[lo:hi] = item.lin.depths
            positions[lo:hi] += item.prefix_len
        return tokens, positions

    def _slot_mask_out(self, i: int, rows: int,
                       cols: int) -> Optional[np.ndarray]:
        """Slot ``i``'s reused mask view, or ``None`` without scratch."""
        if self._arena is None:
            return None
        while len(self._mask_scratches) <= i:
            # Columns are bounded by the sequence capacity, so the per-slot
            # buffer is allocated at its worst-case width once; rows (tree
            # size) grow pow2 and settle after the first few ticks.
            self._mask_scratches.append(MaskScratch(
                self.model.config.dtype, arena=self._arena,
                tag=f"mask{len(self._mask_scratches)}",
                bound=(0, self.model.config.max_seq_len),
            ))
        return self._mask_scratches[i].take(rows, cols)

    def _decode_blocks(self, items: Sequence[_BatchItem], caches: Sequence,
                       layout: _BatchLayout) -> np.ndarray:
        """Block-sparse fused decode: one pass, per-request attention."""
        dtype = self.model.config.dtype
        tokens, positions = self._gather_inputs(items, layout)
        masks = [
            topology_causal_mask(
                item.lin, item.prefix_len, dtype=dtype,
                out=self._slot_mask_out(
                    i, layout.new_counts[i],
                    layout.priors[i] + layout.new_counts[i],
                ),
            )
            for i, item in enumerate(items)
        ]
        return self.model.forward_masked_blocks(
            tokens, positions, masks, caches, priors=layout.priors,
            scratch=self._arena,
        )

    def _decode_dense(self, items: Sequence[_BatchItem], caches: Sequence,
                      layout: _BatchLayout) -> np.ndarray:
        """Dense-fused reference decode under one block-diagonal mask."""
        tokens, positions, mask = self._combine(items, layout)
        concat = _ConcatCache(self.model.config, caches, layout,
                              arena=self._arena)
        # Every score cell outside the diagonal blocks is guaranteed-masked
        # cross-request work; charge it so regressions are measurable.
        perf.add_cross_request_scores(
            self.model.config.n_heads,
            layout.cross_cells * self.model.config.n_layers,
            self.model.config.d_head,
        )
        return self.model.forward_masked(tokens, positions, mask, concat,
                                         scratch=self._arena)

    def _combine(self, items: Sequence[_BatchItem], layout: _BatchLayout):
        """Concatenated tokens/positions and the block-diagonal mask.

        Key columns are laid out per request as [prefix rows | new rows],
        requests in batch order — matching ``_ConcatLayerView.view``.
        """
        dtype = self.model.config.dtype
        tokens, positions = self._gather_inputs(items, layout)
        if self._dense_scratch is not None:
            mask = self._dense_scratch.take(layout.n_total, layout.k_total)
        else:
            perf.add_mask_alloc(layout.n_total * layout.k_total)
            mask = np.empty((layout.n_total, layout.k_total), dtype=dtype)
        mask[:] = NEG_INF
        for i, item in enumerate(items):
            row = layout.row_offsets[i]
            col = layout.col_offsets[i]
            n = layout.new_counts[i]
            width = layout.priors[i] + n
            topology_causal_mask(
                item.lin, item.prefix_len, dtype=dtype,
                out=mask[row : row + n, col : col + width],
            )
        return tokens, positions, mask

    def _verify(self, output: TreeDecodeOutput,
                tree: TokenTree) -> VerificationResult:
        if self.sampling.greedy:
            return verify_greedy(output, tree)
        if self.use_naive_sampling:
            return verify_naive_sampling(output, tree, self.sampling,
                                         self.rng)
        return verify_stochastic(output, tree, self.sampling, self.rng)
