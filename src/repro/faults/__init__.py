"""Seeded, deterministic fault injection for the serving runtime.

The paper's serving substrate (section 5.1) assumes every admitted request
runs to completion; production serving cannot.  This package makes failure
a first-class, *tested* code path: a :class:`FaultPlan` derives one RNG
stream per fault site from a single seed, a :class:`FaultInjector` turns
those streams into injected exceptions (and metrics / trace events), and
the serving stack — :class:`~repro.serving.manager.RequestManager` and
:class:`~repro.engine.pipeline.DecodePipeline` — is taught to survive
them: preempt-and-requeue, bounded retry with backoff-in-iterations, and
graceful speculation fallback.  See ``docs/fault_tolerance.md``.

Because every decision comes from a per-site seeded stream, a chaos run is
exactly reproducible: same seed, same rate, same workload -> the same
faults fire at the same points, which is what lets the chaos parity suite
pin bit-identical outputs against the fault-free run.
"""

from repro.faults.plan import (
    FaultError,
    FaultKind,
    FaultPlan,
    KvPressureFault,
    SpeculationFault,
    TransientSessionFault,
    VerificationFault,
    exception_for,
)
from repro.faults.injector import FaultInjector

__all__ = [
    "FaultError",
    "FaultInjector",
    "FaultKind",
    "FaultPlan",
    "KvPressureFault",
    "SpeculationFault",
    "TransientSessionFault",
    "VerificationFault",
    "exception_for",
]
