"""Fault taxonomy and the seeded plan that decides when faults fire.

A :class:`FaultPlan` is pure configuration: a base rate, optional per-kind
rate overrides, and a seed.  It owns no mutable state — the
:class:`~repro.faults.injector.FaultInjector` materializes the per-site RNG
streams — so plans can be shared, compared, and embedded in test fixtures.

Determinism contract: each :class:`FaultKind` gets its *own* RNG stream,
seeded from ``(seed, crc32(kind))``.  Decisions at one site therefore never
shift another site's stream, and a run is fully determined by (seed, rates,
workload): the ``n``-th check of a given kind always sees the same draw.
"""

from __future__ import annotations

import enum
import zlib
from dataclasses import dataclass
from typing import Mapping, Optional, Type

import numpy as np


class FaultKind(enum.Enum):
    """The failure modes the injector can simulate.

    Attributes:
        SPECULATION: The SSM fleet fails to speculate (speculator crash,
            draft-model OOM); the pipeline tick degrades to incremental
            decoding.
        VERIFICATION: The verification backend fails (fused kernel fault);
            the tick degrades to incremental decoding.
        SESSION: A transient per-request session error (lost connection,
            worker restart); the manager retries with backoff-in-iterations
            and eventually marks the request FAILED.
        KV_PRESSURE: A simulated KV-memory pressure spike; the manager
            preempts a victim request to shed load.
    """

    SPECULATION = "speculation"
    VERIFICATION = "verification"
    SESSION = "session"
    KV_PRESSURE = "kv_pressure"


class FaultError(RuntimeError):
    """Base class of every injected fault."""


class SpeculationFault(FaultError):
    """Injected SSM-speculation failure."""


class VerificationFault(FaultError):
    """Injected verification-backend failure."""


class TransientSessionFault(FaultError):
    """Injected transient per-request session error."""


class KvPressureFault(FaultError):
    """Injected KV-memory pressure spike."""


_EXCEPTION_FOR: Mapping[FaultKind, Type[FaultError]] = {
    FaultKind.SPECULATION: SpeculationFault,
    FaultKind.VERIFICATION: VerificationFault,
    FaultKind.SESSION: TransientSessionFault,
    FaultKind.KV_PRESSURE: KvPressureFault,
}


def exception_for(kind: FaultKind) -> Type[FaultError]:
    """The exception class an injected fault of ``kind`` raises."""
    return _EXCEPTION_FOR[kind]


@dataclass(frozen=True)
class FaultPlan:
    """Seeded description of *when* faults fire.

    Args:
        rate: Base per-check fire probability in ``[0, 1]`` applied to every
            kind without an override.
        seed: Master seed; each kind's stream derives from it.
        rates: Optional per-kind rate overrides (e.g. KV pressure only).
    """

    rate: float = 0.0
    seed: int = 0
    rates: Optional[Mapping[FaultKind, float]] = None

    def __post_init__(self) -> None:
        for kind in FaultKind:
            r = self.rate_for(kind)
            if not 0.0 <= r <= 1.0:
                raise ValueError(
                    f"fault rate for {kind.value} must be in [0, 1], got {r}"
                )

    def rate_for(self, kind: FaultKind) -> float:
        """The fire probability of one fault kind."""
        if self.rates is not None and kind in self.rates:
            return float(self.rates[kind])
        return float(self.rate)

    def stream(self, kind: FaultKind) -> np.random.Generator:
        """A fresh RNG stream for ``kind``, independent across kinds."""
        return np.random.default_rng(
            [self.seed, zlib.crc32(kind.value.encode("ascii"))]
        )
