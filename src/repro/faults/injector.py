"""The fault injector: seeded decisions -> injected exceptions + telemetry.

An injector is the single mutable object of the fault layer.  Call sites
ask it one question — "does a fault of this kind fire here?" — either as a
boolean (:meth:`FaultInjector.should_fire`, used where the caller handles
the fault as a signal, e.g. KV-pressure preemption) or as an exception
(:meth:`FaultInjector.maybe_fail`, used where the fault interrupts a code
path, e.g. speculation).  Every check and every injection is counted in the
``repro.faults.*`` metrics and injected faults emit ``repro.faults.inject``
trace events, so a chaos run's failure surface is fully observable.
"""

from __future__ import annotations

from typing import Dict, Optional

from repro.faults.plan import FaultKind, FaultPlan, exception_for
from repro.obs import REGISTRY, TRACER

_CHECKS = REGISTRY.counter(
    "repro.faults.checks", help="fault-injection decision points evaluated")
_INJECTED = REGISTRY.counter(
    "repro.faults.injected", help="faults injected (all kinds)")
_BY_KIND = {
    kind: REGISTRY.counter(
        f"repro.faults.{kind.value}",
        help=f"injected {kind.value.replace('_', ' ')} faults",
    )
    for kind in FaultKind
}


class FaultInjector:
    """Draws per-site seeded decisions and raises the matching faults.

    Args:
        rate: Base per-check fire probability (ignored when ``plan`` given).
        seed: Master seed (ignored when ``plan`` given).
        rates: Optional per-kind rate overrides (ignored when ``plan`` given).
        plan: An explicit :class:`FaultPlan` to use instead.
    """

    def __init__(
        self,
        rate: float = 0.0,
        seed: int = 0,
        rates: Optional[Dict[FaultKind, float]] = None,
        plan: Optional[FaultPlan] = None,
    ):
        self.plan = plan if plan is not None else FaultPlan(
            rate=rate, seed=seed, rates=rates
        )
        self._streams = {kind: self.plan.stream(kind) for kind in FaultKind}
        self.checks: Dict[FaultKind, int] = {kind: 0 for kind in FaultKind}
        self.injected: Dict[FaultKind, int] = {kind: 0 for kind in FaultKind}

    # -- decision ------------------------------------------------------------------

    def _decide(self, kind: FaultKind) -> bool:
        """One seeded draw for ``kind`` (overridable by scripted test doubles)."""
        rate = self.plan.rate_for(kind)
        if rate <= 0.0:
            return False
        return float(self._streams[kind].random()) < rate

    def should_fire(self, kind: FaultKind, **context) -> bool:
        """Whether a fault of ``kind`` fires at this check point.

        ``context`` keys (request id, iteration, ...) are attached to the
        ``repro.faults.inject`` trace event when the fault fires.
        """
        self.checks[kind] += 1
        _CHECKS.inc()
        if not self._decide(kind):
            return False
        self.injected[kind] += 1
        _INJECTED.inc()
        _BY_KIND[kind].inc()
        TRACER.event("repro.faults.inject", kind=kind.value, **context)
        return True

    def maybe_fail(self, kind: FaultKind, **context) -> None:
        """Raise the fault of ``kind`` if this check point fires."""
        if self.should_fire(kind, **context):
            raise exception_for(kind)(
                f"injected {kind.value} fault"
                + (f" ({context})" if context else "")
            )

    # -- inspection ----------------------------------------------------------------

    @property
    def total_injected(self) -> int:
        """Faults injected across all kinds since construction."""
        return sum(self.injected.values())
