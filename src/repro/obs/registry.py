"""Process-wide metrics registry: counters, gauges, histograms.

One registry (:data:`REGISTRY`) is the single accumulation point for every
quantitative fact the system measures about itself — operation counts from
the model primitives (via the :mod:`repro.model.perf` shim), pipeline-phase
latencies, serving admission/retirement, KV-arena residency, and the cluster
simulator's simulated-vs-host clock.  The paper's evaluation is entirely
about measured behaviour (verified tokens per step, per-iteration latency,
speedup over incremental decoding); this module is where those measurements
live between the hot path that produces them and the reporting/CI layers
that consume them.

Design constraints, in priority order:

* **Determinism** — recorded *values* must never contain wall-clock
  timestamps.  Durations are :func:`time.perf_counter` deltas observed into
  histograms (whose bucket layout is fixed at registration), and logical
  clocks (iterations, cost-model steps) are plain counters, so a seeded run
  produces the same counter/gauge values every time; only the
  ``host_seconds`` histograms vary run-to-run, and nothing byte-compared
  reads them.
* **Hot-path cost** — a counter increment is one attribute add.  Metric
  objects are interned (``counter(name)`` returns the same object every
  call), so instrumented modules look them up once at import time.
* **Simplicity over concurrency** — the registry is **not thread-safe**:
  increments are plain Python ``+=`` on shared objects, unguarded by locks.
  The decode loop is single-threaded by construction (NumPy substrate), and
  a lock per ``add_gemm`` would cost more than the GEMM accounting itself.
  If a threaded execution surface lands, it must shard registries per
  thread and merge snapshots.

Naming convention: ``repro.<layer>.<metric>`` with layers ``model``,
``engine``, ``verify``, ``serving``, ``cluster``, ``bench`` (see
``docs/observability.md``).  Names are validated at registration so typos
fail loudly instead of creating orphan series.
"""

from __future__ import annotations

import json
import re
from typing import Dict, List, Optional, Sequence, Tuple, Union

Number = Union[int, float]

#: ``repro.<layer>.<metric>`` — dot-separated lowercase segments.
_NAME_RE = re.compile(r"^[a-z][a-z0-9_]*(\.[a-z0-9_]+)+$")

#: Default histogram bucket upper bounds for host-time observations
#: (seconds).  Chosen to resolve toy-substrate phase latencies (tens of
#: microseconds) through full-workload replays (tens of seconds).
DEFAULT_TIME_BUCKETS: Tuple[float, ...] = (
    1e-5, 1e-4, 1e-3, 1e-2, 1e-1, 1.0, 10.0,
)

#: Default buckets for small-count observations (tree sizes, tokens/step).
DEFAULT_COUNT_BUCKETS: Tuple[float, ...] = (
    1, 2, 4, 8, 16, 32, 64, 128,
)


def _check_name(name: str) -> str:
    if not _NAME_RE.match(name):
        raise ValueError(
            f"metric name {name!r} does not match the "
            f"'repro.<layer>.<metric>' convention (lowercase dotted "
            f"segments)"
        )
    return name


class Counter:
    """A monotonically non-decreasing count (events, tokens, FLOPs)."""

    kind = "counter"

    def __init__(self, name: str, help: str = ""):
        self.name = name
        self.help = help
        self.value: Number = 0

    def inc(self, amount: Number = 1) -> None:
        """Add ``amount`` (must be >= 0)."""
        if amount < 0:
            raise ValueError(
                f"counter {self.name} cannot decrease (inc({amount}))"
            )
        self.value += amount

    def _reset(self) -> None:
        self.value = 0

    def _as_dict(self) -> Dict[str, object]:
        return {"kind": self.kind, "value": self.value}


class Gauge:
    """A value that can go up and down (residency, queue depth).

    ``set_max`` implements high-water marks: the gauge keeps the largest
    value ever set through it (until :meth:`MetricsRegistry.reset`).
    """

    kind = "gauge"

    def __init__(self, name: str, help: str = ""):
        self.name = name
        self.help = help
        self.value: Number = 0

    def set(self, value: Number) -> None:
        self.value = value

    def add(self, amount: Number) -> None:
        self.value += amount

    def set_max(self, value: Number) -> None:
        """Raise the gauge to ``value`` if it is a new high-water mark."""
        if value > self.value:
            self.value = value

    def _reset(self) -> None:
        self.value = 0

    def _as_dict(self) -> Dict[str, object]:
        return {"kind": self.kind, "value": self.value}


class Histogram:
    """Fixed-bucket histogram of observations.

    Buckets are *upper bounds* with less-than-or-equal semantics: an
    observation ``v`` lands in the first bucket whose bound satisfies
    ``v <= bound``; values above the last bound land in the implicit
    overflow bucket.  Bucket boundaries are fixed at registration —
    re-registering the same name with different bounds is an error, so
    every consumer of a series sees the same layout.
    """

    kind = "histogram"

    def __init__(self, name: str, buckets: Sequence[float],
                 help: str = ""):
        if not buckets:
            raise ValueError(f"histogram {name} needs at least one bucket")
        bounds = tuple(float(b) for b in buckets)
        if list(bounds) != sorted(set(bounds)):
            raise ValueError(
                f"histogram {name} bucket bounds must be strictly "
                f"increasing: {bounds}"
            )
        self.name = name
        self.help = help
        self.bounds = bounds
        self.counts: List[int] = [0] * (len(bounds) + 1)  # +overflow
        self.total: float = 0.0
        self.count: int = 0

    def observe(self, value: Number) -> None:
        """Record one observation."""
        for i, bound in enumerate(self.bounds):
            if value <= bound:
                self.counts[i] += 1
                break
        else:
            self.counts[-1] += 1
        self.total += value
        self.count += 1

    @property
    def mean(self) -> float:
        return self.total / self.count if self.count else 0.0

    def _reset(self) -> None:
        self.counts = [0] * (len(self.bounds) + 1)
        self.total = 0.0
        self.count = 0

    def _as_dict(self) -> Dict[str, object]:
        return {
            "kind": self.kind,
            "buckets": list(self.bounds),
            "counts": list(self.counts),
            "sum": self.total,
            "count": self.count,
        }


Metric = Union[Counter, Gauge, Histogram]


class MetricsRegistry:
    """Interning container for every metric in the process.

    **Not thread-safe** — see the module docstring.  All mutation is plain
    unguarded attribute arithmetic; callers own serialization if they ever
    introduce threads.

    ``counter`` / ``gauge`` / ``histogram`` are get-or-create: the first
    call registers (and may set ``help`` / buckets), subsequent calls
    return the interned object, so modules can resolve their metrics once
    at import time and :meth:`reset` zeroes values *in place* without
    invalidating those references.
    """

    def __init__(self):
        self._metrics: Dict[str, Metric] = {}

    # -- registration -------------------------------------------------------------

    def _get_or_create(self, cls, name: str, **kwargs) -> Metric:
        existing = self._metrics.get(name)
        if existing is not None:
            if not isinstance(existing, cls):
                raise TypeError(
                    f"metric {name} is a {existing.kind}, not a "
                    f"{cls.kind}"
                )
            if cls is Histogram and "buckets" in kwargs:
                bounds = tuple(float(b) for b in kwargs["buckets"])
                if bounds != existing.bounds:
                    raise ValueError(
                        f"histogram {name} already registered with buckets "
                        f"{existing.bounds}, not {bounds}"
                    )
            return existing
        metric = cls(_check_name(name), **kwargs)
        self._metrics[name] = metric
        return metric

    def counter(self, name: str, help: str = "") -> Counter:
        return self._get_or_create(Counter, name, help=help)

    def gauge(self, name: str, help: str = "") -> Gauge:
        return self._get_or_create(Gauge, name, help=help)

    def histogram(self, name: str,
                  buckets: Optional[Sequence[float]] = None,
                  help: str = "") -> Histogram:
        """Get-or-create; ``buckets`` defaults to the time buckets at
        registration and is only *checked* when passed explicitly, so
        re-fetching an interned histogram needs no bucket knowledge."""
        if buckets is None:
            existing = self._metrics.get(name)
            if isinstance(existing, Histogram):
                return existing
            buckets = DEFAULT_TIME_BUCKETS
        return self._get_or_create(Histogram, name, buckets=buckets,
                                   help=help)

    # -- inspection ---------------------------------------------------------------

    def get(self, name: str) -> Optional[Metric]:
        return self._metrics.get(name)

    def names(self) -> List[str]:
        return sorted(self._metrics)

    def __contains__(self, name: str) -> bool:
        return name in self._metrics

    def __len__(self) -> int:
        return len(self._metrics)

    # -- snapshots ----------------------------------------------------------------

    def snapshot(self) -> Dict[str, Dict[str, object]]:
        """Point-in-time copy of every metric, keyed by name (sorted)."""
        return {name: self._metrics[name]._as_dict()
                for name in sorted(self._metrics)}

    def delta(self, earlier: Dict[str, Dict[str, object]]
              ) -> Dict[str, Dict[str, object]]:
        """Counter/histogram growth since ``earlier`` (a snapshot).

        Gauges are point-in-time by nature and carry their *current* value.
        Metrics absent from ``earlier`` are treated as starting from zero.
        """
        current = self.snapshot()
        out: Dict[str, Dict[str, object]] = {}
        for name, now in current.items():
            then = earlier.get(name)
            if now["kind"] == "counter" and then is not None:
                out[name] = {"kind": "counter",
                             "value": now["value"] - then["value"]}
            elif now["kind"] == "histogram" and then is not None:
                out[name] = {
                    "kind": "histogram",
                    "buckets": now["buckets"],
                    "counts": [a - b for a, b in
                               zip(now["counts"], then["counts"])],
                    "sum": now["sum"] - then["sum"],
                    "count": now["count"] - then["count"],
                }
            else:
                out[name] = now
        return out

    def reset(self) -> None:
        """Zero every metric in place (interned references stay valid)."""
        for metric in self._metrics.values():
            metric._reset()

    def to_json(self, snapshot: Optional[Dict] = None, indent: int = 2) -> str:
        """The registry (or a given snapshot) as deterministic JSON."""
        return json.dumps(snapshot if snapshot is not None else
                          self.snapshot(), indent=indent, sort_keys=True)


#: The process-wide registry every instrumented module adds into.
REGISTRY = MetricsRegistry()
