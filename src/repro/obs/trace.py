"""Structured span/event tracer with deterministic JSONL export.

The tracer answers "what happened, in what order, inside what" — the
questions the flat metrics registry cannot.  A *span* brackets one phase of
work (a pipeline tick, one speculate/fit/verify/commit phase, a fused
verification pass); an *event* marks a point occurrence (a request
admitted, a request retired).  Both carry an ``attrs`` dict of structured
facts.

Determinism is the load-bearing property: exported records contain **no
wall-clock values** — ordering is a process-local monotonic sequence
number (``seq``), and every attribute is a seed-derived quantity (token
counts, tree shapes, request ids, iteration indices).  A seeded workload
therefore exports byte-identical JSONL on every run, which is what lets CI
diff traces instead of eyeballing them.  Host time is still *measured*:
each span observes its :func:`time.perf_counter` delta into the metrics
registry histogram ``<span-name>.host_seconds``, which is reported by
``repro metrics`` but never written into the trace.

Recording is off by default (the metrics side stays always-on and cheap);
``repro trace`` and the trace tests arm it via :meth:`Tracer.enable` or the
:func:`tracing` context manager.  Like the registry, the tracer is **not
thread-safe** — the span stack is a plain list.

Export schema (one JSON object per line, keys sorted, compact separators —
see ``docs/observability.md``):

``{"attrs": {...}, "end": 9, "id": 2, "kind": "span", "name": "...",
"parent": 1, "seq": 3}``
``{"attrs": {...}, "kind": "event", "name": "...", "seq": 5, "span": 2}``
"""

from __future__ import annotations

import json
import time
from contextlib import contextmanager
from typing import Dict, IO, Iterator, List, Optional, Union

from repro.obs.registry import DEFAULT_TIME_BUCKETS, REGISTRY

Attr = Union[int, float, str, bool, None]


class SpanHandle:
    """A live span: amend its attributes before it closes with :meth:`set`."""

    __slots__ = ("name", "span_id", "parent_id", "seq", "attrs", "_t0")

    def __init__(self, name: str, span_id: int, parent_id: Optional[int],
                 seq: int, attrs: Dict[str, Attr], t0: float):
        self.name = name
        self.span_id = span_id
        self.parent_id = parent_id
        self.seq = seq
        self.attrs = attrs
        self._t0 = t0

    def set(self, **attrs: Attr) -> None:
        """Attach attributes discovered while the span is open."""
        self.attrs.update(attrs)


class _NullSpan:
    """The disabled-tracer span: swallows attributes, costs a method call."""

    __slots__ = ()

    def set(self, **attrs: Attr) -> None:
        pass


_NULL_SPAN = _NullSpan()


class Tracer:
    """Span/event recorder feeding deterministic JSONL.

    Args:
        registry: Metrics registry that receives ``<name>.host_seconds``
            histogram observations for every span (defaults to the
            process-wide one).  Timing runs even while record-keeping is
            disabled, so phase-latency histograms are always populated.
    """

    def __init__(self, registry=None):
        self.registry = registry if registry is not None else REGISTRY
        self.enabled = False
        self._records: List[Dict[str, object]] = []
        self._stack: List[int] = []  # open span ids
        self._next_span_id = 0
        self._next_seq = 0

    # -- lifecycle ----------------------------------------------------------------

    def enable(self, on: bool = True) -> None:
        """Turn record-keeping on/off (timing histograms are unaffected)."""
        self.enabled = on

    def reset(self) -> None:
        """Drop all records and restart ids/sequence numbers from zero."""
        self._records = []
        self._stack = []
        self._next_span_id = 0
        self._next_seq = 0

    def _seq(self) -> int:
        seq = self._next_seq
        self._next_seq += 1
        return seq

    # -- recording ----------------------------------------------------------------

    @contextmanager
    def span(self, name: str, **attrs: Attr) -> Iterator[SpanHandle]:
        """Bracket one phase of work; always times it, records if enabled."""
        timer = self.registry.histogram(
            f"{name}.host_seconds", buckets=DEFAULT_TIME_BUCKETS
        )
        # lint: allow-wall-clock Tracer.span IS the sanctioned host-timing site every other hot-path timer must route through
        t0 = time.perf_counter()
        if not self.enabled:
            try:
                yield _NULL_SPAN
            finally:
                # lint: allow-wall-clock span end: pairs with the sanctioned t0 read above
                timer.observe(time.perf_counter() - t0)
            return
        span_id = self._next_span_id
        self._next_span_id += 1
        handle = SpanHandle(
            name=name,
            span_id=span_id,
            parent_id=self._stack[-1] if self._stack else None,
            seq=self._seq(),
            attrs=dict(attrs),
            t0=t0,
        )
        self._stack.append(span_id)
        try:
            yield handle
        finally:
            self._stack.pop()
            # lint: allow-wall-clock span end: pairs with the sanctioned t0 read above
            timer.observe(time.perf_counter() - t0)
            self._records.append({
                "kind": "span",
                "seq": handle.seq,
                "end": self._seq(),
                "id": handle.span_id,
                "parent": handle.parent_id,
                "name": handle.name,
                "attrs": handle.attrs,
            })

    def event(self, name: str, **attrs: Attr) -> None:
        """Record a point occurrence inside the current span (if enabled)."""
        if not self.enabled:
            return
        self._records.append({
            "kind": "event",
            "seq": self._seq(),
            "span": self._stack[-1] if self._stack else None,
            "name": name,
            "attrs": dict(attrs),
        })

    # -- export -------------------------------------------------------------------

    def records(self) -> List[Dict[str, object]]:
        """All records in ``seq`` (i.e. start) order."""
        return sorted(self._records, key=lambda r: r["seq"])

    def to_jsonl(self) -> str:
        """The trace as JSONL: one sorted-key compact object per line."""
        return "\n".join(
            json.dumps(record, sort_keys=True, separators=(",", ":"))
            for record in self.records()
        )

    def export_jsonl(self, stream: IO[str]) -> int:
        """Write :meth:`to_jsonl` (newline-terminated); returns #records."""
        text = self.to_jsonl()
        if text:
            stream.write(text + "\n")
        return len(self._records)


#: The process-wide tracer the instrumented layers record into.
TRACER = Tracer()


@contextmanager
def tracing(tracer: Optional[Tracer] = None) -> Iterator[Tracer]:
    """Enable ``tracer`` (default: the global one) for a ``with`` block,
    starting from a clean slate; restores the previous enabled state."""
    target = tracer if tracer is not None else TRACER
    previous = target.enabled
    target.reset()
    target.enable(True)
    try:
        yield target
    finally:
        target.enable(previous)
