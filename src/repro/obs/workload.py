"""The seeded reference workload the observability CLI and tests observe.

``repro trace`` and ``repro metrics`` need a workload that (a) exercises
every instrumented layer — the four pipeline phases, a fused verification
backend, continuous-batching admission/retirement, the shared KV arena, and
the cluster cost model — and (b) is fully determined by its seed, so the
exported trace is byte-identical across runs.  This module is that
workload: a Poisson arrival schedule of dataset prompts served by a
:class:`~repro.serving.manager.RequestManager` over a
:class:`~repro.model.arena.BatchArena`, followed by one offline generation
replayed through the hardware cost model.

It lives in ``repro.obs`` (not the CLI) so the trace golden tests and the
CLI drive the *same* code path — the determinism test is a regression test
for exactly what ``repro trace`` ships.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

import numpy as np


@dataclass(frozen=True)
class WorkloadSpec:
    """Parameters of one observed workload run (all seed-determined).

    Attributes:
        dataset: Prompt source name (:data:`repro.workloads.datasets.DATASET_NAMES`).
        requests: Requests to submit.
        max_new_tokens: Generation budget per request.
        batch: Scheduler batch slots (also sizes the KV arena).
        rate: Poisson arrival rate (requests per scheduler iteration).
        seed: Master seed (models, arrivals, prompts).
        alignment: SSM/LLM alignment of the toy coupled pair.
        mode: Fused verification mode, ``"block"`` or ``"dense"``.
        simulate: Also replay one offline generation through the cluster
            cost model (populates ``repro.cluster.*`` metrics).
        fault_rate: Per-site fault-injection probability; 0.0 (default)
            serves without an injector, byte-identical to the pre-fault
            workload.
        fault_seed: Seed for the injector's fault streams; defaults to a
            fixed offset of ``seed`` so fault decisions never perturb the
            workload's own RNG streams.
        planner: Attach a hardware-aware
            :class:`~repro.speculate.planner.TreePlanner` to the shared
            pipeline — speculation budgets re-solved every tick (populates
            ``repro.planner.*`` metrics).  Greedy token output is identical
            either way; only the tree shapes change.
        pool: Serve with a heterogeneous speculator pool of this many
            coupled members (alignments stepping down from ``alignment``)
            routed per request; 0 (default) keeps the single-SSM path.
            Greedy token output is identical either way — routing only
            changes which member drafts (populates ``repro.router.*``
            metrics).
        router: Routing policy over the pool (``"ucb"``, ``"thompson"``,
            ``"round_robin"``, or ``"fixed:<member>"``); only consulted
            when ``pool >= 2``.
    """

    dataset: str = "Alpaca"
    requests: int = 4
    max_new_tokens: int = 8
    batch: int = 4
    rate: float = 1.0
    seed: int = 7
    alignment: float = 0.88
    mode: str = "block"
    simulate: bool = True
    fault_rate: float = 0.0
    fault_seed: Optional[int] = None
    planner: bool = False
    pool: int = 0
    router: str = "ucb"


def _build_toy_pair(alignment: float, seed: int):
    """Toy LLM + coupled-SSM factory (the CLI demo substrate)."""
    from repro.model.config import ModelConfig
    from repro.model.coupled import CoupledSSM
    from repro.model.transformer import TransformerLM

    llm = TransformerLM(
        ModelConfig(vocab_size=96, d_model=48, n_layers=3, n_heads=4,
                    max_seq_len=256, name="obs-llm"),
        seed=seed,
    )

    def ssm_factory():
        return CoupledSSM(llm, alignment=alignment, seed=seed + 1,
                          noise_scale=2.0)

    return llm, ssm_factory


def run_observed_workload(spec: Optional[WorkloadSpec] = None):
    """Serve ``spec`` and return the drained manager.

    Everything downstream of ``spec.seed`` is deterministic; callers that
    want a clean trace/metric state reset the observability globals first
    (:func:`repro.obs.reset_observability`).
    """
    from repro.engine.generation import GenerationConfig
    from repro.engine.pipeline import FusedBackend
    from repro.model.arena import BatchArena
    from repro.serving.manager import RequestManager
    from repro.serving.session import SpeculativeSession, make_routed_factory
    from repro.speculate.expansion import ExpansionConfig
    from repro.speculate.speculator import Speculator
    from repro.workloads.arrival import PoissonArrivals, drive_manager
    from repro.workloads.datasets import make_dataset

    spec = spec or WorkloadSpec()
    llm, ssm_factory = _build_toy_pair(spec.alignment, spec.seed)
    arena = BatchArena(llm.config, max_requests=spec.batch)

    router = None
    if spec.pool:
        from repro.speculate.pool import SpeculatorPool
        from repro.speculate.router import RouterConfig, SpeculatorRouter

        if spec.pool < 2:
            raise ValueError("a routed pool needs >= 2 members")
        sp_pool = SpeculatorPool.coupled_spread(
            llm, spec.pool, spec.alignment, seed=spec.seed + 1,
            config=ExpansionConfig.paper_default(),
        )
        router = SpeculatorRouter(
            sp_pool, RouterConfig(policy=spec.router, seed=spec.seed)
        )
        session_factory = make_routed_factory(
            llm, sp_pool, router, cache_factory=arena.new_sequence
        )
    else:
        def session_factory(request):
            return SpeculativeSession(
                request, llm,
                lambda: Speculator([ssm_factory()],
                                   ExpansionConfig.paper_default()),
                cache_factory=arena.new_sequence,
            )

    injector = None
    if spec.fault_rate > 0:
        from repro.faults import FaultInjector

        fault_seed = (spec.fault_seed if spec.fault_seed is not None
                      else spec.seed + 9973)
        injector = FaultInjector(rate=spec.fault_rate, seed=fault_seed)
    planner = None
    if spec.planner:
        from repro.speculate.planner import TreePlanner

        planner = TreePlanner.default()
    manager = RequestManager(
        session_factory,
        max_batch_size=spec.batch,
        backend=FusedBackend(llm, rng=np.random.default_rng(spec.seed),
                             mode=spec.mode),
        injector=injector,
        planner=planner,
        router=router,
    )
    dataset = make_dataset(spec.dataset, vocab_size=llm.config.vocab_size)
    arrivals = PoissonArrivals(
        rate=spec.rate, dataset=dataset, seed=spec.seed, max_prompt_len=16
    ).schedule(spec.requests)
    drive_manager(
        manager, arrivals,
        GenerationConfig(max_new_tokens=spec.max_new_tokens,
                         stop_on_eos=False),
    )
    if spec.simulate:
        _replay_through_cost_model(llm, ssm_factory, spec)
    return manager


def _replay_through_cost_model(llm, ssm_factory, spec: WorkloadSpec) -> None:
    """One offline generation replayed at paper scale (cluster metrics)."""
    from repro.cluster.cost_model import LatencyModel
    from repro.cluster.hardware import single_node_cluster
    from repro.cluster.models import paper_model
    from repro.cluster.parallel import ParallelPlan
    from repro.cluster.simulator import ServingSimulator
    from repro.engine.generation import GenerationConfig
    from repro.engine.tree_spec import SpecInferEngine
    from repro.speculate.expansion import ExpansionConfig
    from repro.speculate.speculator import Speculator

    rng = np.random.default_rng(spec.seed)
    prompt = [int(t) for t in
              rng.integers(1, llm.config.vocab_size, size=8)]
    result = SpecInferEngine(
        llm, Speculator([ssm_factory()], ExpansionConfig.paper_default())
    ).generate(
        prompt,
        GenerationConfig(max_new_tokens=spec.max_new_tokens,
                         stop_on_eos=False),
    )
    cluster = single_node_cluster()
    plan = ParallelPlan(tensor_parallel=1, pipeline_stages=1)
    simulator = ServingSimulator(
        llm_latency=LatencyModel(paper_model("llama-7b"), plan, cluster),
        ssm_latency=LatencyModel(paper_model("llama-68m"), plan, cluster),
    )
    simulator.replay(result, batch_size=spec.batch)
