"""Unified observability: one metrics registry + one tracer for the system.

Everything the paper's evaluation measures — verified tokens per step,
per-phase latency, arena residency, simulated speedups — flows through this
package:

* :mod:`repro.obs.registry` — process-wide counters/gauges/histograms
  (:data:`REGISTRY`), deterministic under seeds;
* :mod:`repro.obs.trace` — structured spans/events (:data:`TRACER`) with
  byte-deterministic JSONL export;
* :mod:`repro.obs.workload` — the seeded reference workload the ``repro
  trace`` / ``repro metrics`` CLI subcommands (and the trace golden tests)
  observe.

See ``docs/observability.md`` for the naming convention
(``repro.<layer>.<metric>``), the trace schema, and how to add a metric.
"""

from repro.obs.registry import (
    Counter,
    DEFAULT_COUNT_BUCKETS,
    DEFAULT_TIME_BUCKETS,
    Gauge,
    Histogram,
    MetricsRegistry,
    REGISTRY,
)
from repro.obs.trace import SpanHandle, Tracer, TRACER, tracing

__all__ = [
    "Counter",
    "DEFAULT_COUNT_BUCKETS",
    "DEFAULT_TIME_BUCKETS",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
    "REGISTRY",
    "SpanHandle",
    "Tracer",
    "TRACER",
    "tracing",
    "reset_observability",
]


def reset_observability() -> None:
    """Zero the registry and clear the tracer (tests, CLI runs)."""
    REGISTRY.reset()
    TRACER.reset()
