"""Serving simulator: replay algorithm traces through the cost models.

The algorithmic engines (``repro.engine``) produce per-step traces —
tree sizes, accepted-token counts, SSM steps — from *real* runs on the
NumPy models.  This module converts those traces into end-to-end per-token
latencies for each serving-system configuration the paper compares
(Figure 7's six systems, Figure 8's offloading pair, Figures 10/11's
ablations).

The batch model matches the paper's benchmark methodology: a batch of B
requests with identical workload statistics advances in lock-step
iterations (continuous batching keeps the batch full), so a step scores
``B x per-request tokens`` and reads ``B x per-request context``.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass
from typing import Optional, Sequence, Union

import numpy as np

from repro.cluster.cost_model import LatencyModel
from repro.cluster.offload import OffloadLatencyModel
from repro.engine.generation import GenerationResult, StepTrace
from repro.obs import REGISTRY, TRACER

# Simulated-vs-host clock: the counters accumulate *modeled* seconds
# (deterministic under seeds — they are cost-model outputs, not wall time);
# the host cost of running the replay itself lands in the span-fed
# ``repro.cluster.replay.host_seconds`` histogram.
_REPLAYS = REGISTRY.counter(
    "repro.cluster.replays", help="generation traces replayed")
_STEPS_REPLAYED = REGISTRY.counter(
    "repro.cluster.steps_replayed", help="per-step trace records replayed")
_SIM_SECONDS = REGISTRY.counter(
    "repro.cluster.simulated_seconds", help="modeled wall-clock, total")
_SIM_SPEC = REGISTRY.counter(
    "repro.cluster.simulated_spec_seconds", help="modeled SSM speculation time")
_SIM_VERIFY = REGISTRY.counter(
    "repro.cluster.simulated_verify_seconds",
    help="modeled LLM decode/verify time")


class SystemKind(enum.Enum):
    """Serving systems compared in Figure 7."""

    INCREMENTAL = "incremental"  # vLLM / TGI / FasterTransformer / ours-incr
    SEQUENCE_SPEC = "sequence-spec"  # sequence-based speculative inference
    TREE_SPEC = "tree-spec"  # SpecInfer


@dataclass(frozen=True)
class SimulatedLatency:
    """End-to-end simulated latency of one replayed generation.

    Attributes:
        total_seconds: Modeled serial seconds for the generation(s).  For a
            single :meth:`ServingSimulator.replay` this is one request's
            wall-clock (the batch advances together).  For
            :meth:`ServingSimulator.replay_many` it is the *sum* across
            requests — a throughput/accounting total, **not** batch
            wall-clock; see ``batch_wall_seconds``.
        tokens: Tokens generated (summed across requests for aggregates).
        spec_seconds: Time spent in SSM speculation.
        verify_seconds: Time spent in LLM decoding/verification steps.
        batch_wall_seconds: Wall-clock of the slowest request when this
            latency aggregates concurrent requests (``replay_many``);
            ``None`` for a single-request replay.
    """

    total_seconds: float
    tokens: int
    spec_seconds: float
    verify_seconds: float
    batch_wall_seconds: Optional[float] = None

    @property
    def per_token_seconds(self) -> float:
        return self.total_seconds / max(self.tokens, 1)

    @property
    def per_token_ms(self) -> float:
        return self.per_token_seconds * 1e3


class ServingSimulator:
    """Replays generation traces under a hardware model.

    Args:
        llm_latency: Step-latency model for the LLM — either a distributed
            :class:`LatencyModel` or an :class:`OffloadLatencyModel`.
        ssm_latency: Step-latency model for the SSM (single GPU); ``None``
            for incremental-only simulation.
    """

    def __init__(
        self,
        llm_latency: Union[LatencyModel, OffloadLatencyModel],
        ssm_latency: Optional[LatencyModel] = None,
    ):
        self.llm_latency = llm_latency
        self.ssm_latency = ssm_latency

    def replay(
        self,
        result: GenerationResult,
        batch_size: int = 1,
        sequence_based_decoding: bool = False,
    ) -> SimulatedLatency:
        """Simulate one generation trace.

        Args:
            result: Trace from an algorithmic engine run.
            batch_size: Concurrent identical-statistics requests.
            sequence_based_decoding: Model the Figure 11 baseline — the
                speculated tree is decoded as independent root-to-leaf
                sequences (more kernels, redundant prefix computation)
                instead of SpecInfer's single fused tree kernel.
        """
        if batch_size < 1:
            raise ValueError("batch_size must be >= 1")
        with TRACER.span("repro.cluster.replay", steps=len(result.steps),
                         batch=batch_size) as span:
            spec_seconds = 0.0
            verify_seconds = 0.0
            for step in result.steps:
                spec_seconds += self._spec_time(step, batch_size)
                verify_seconds += self._verify_time(
                    step, batch_size, sequence_based_decoding
                )
            _REPLAYS.inc()
            _STEPS_REPLAYED.inc(len(result.steps))
            _SIM_SPEC.inc(spec_seconds)
            _SIM_VERIFY.inc(verify_seconds)
            _SIM_SECONDS.inc(spec_seconds + verify_seconds)
            span.set(simulated_seconds=spec_seconds + verify_seconds)
        return SimulatedLatency(
            total_seconds=spec_seconds + verify_seconds,
            tokens=result.num_tokens,
            spec_seconds=spec_seconds,
            verify_seconds=verify_seconds,
        )

    def replay_many(
        self,
        results: Sequence[GenerationResult],
        batch_size: int = 1,
        sequence_based_decoding: bool = False,
    ) -> SimulatedLatency:
        """Aggregate replay over several requests.

        The returned ``total_seconds`` is the **sum** of each request's
        serial seconds — the right denominator-weighting for the
        ``per_token_seconds`` property, which then equals the token-weighted
        mean per-token latency across requests.  It is *not* the wall-clock
        of running the requests concurrently; that is the slowest request's
        time and is reported as ``batch_wall_seconds``.
        """
        if not results:
            raise ValueError("results must be non-empty")
        sims = [
            self.replay(r, batch_size, sequence_based_decoding)
            for r in results
        ]
        return SimulatedLatency(
            total_seconds=float(sum(s.total_seconds for s in sims)),
            tokens=int(sum(s.tokens for s in sims)),
            spec_seconds=float(sum(s.spec_seconds for s in sims)),
            verify_seconds=float(sum(s.verify_seconds for s in sims)),
            batch_wall_seconds=float(max(s.total_seconds for s in sims)),
        )

    # -- internals -----------------------------------------------------------------

    def _spec_time(self, step: StepTrace, batch_size: int) -> float:
        if step.ssm_steps == 0:
            return 0.0
        if self.ssm_latency is None:
            raise ValueError(
                "trace contains speculation steps but no SSM latency model "
                "was provided"
            )
        # Each sequential SSM step scores roughly (tree width) tokens per
        # request; the frontier averages tree_size / depth.
        width = max(1, round(step.tree_size / max(step.tree_depth, 1)))
        scored = batch_size * width
        context = batch_size * (step.prefix_len + step.tree_depth)
        per_step = self.ssm_latency.step_latency(scored, context)
        return step.ssm_steps * per_step

    def _verify_time(
        self, step: StepTrace, batch_size: int, sequence_based: bool
    ) -> float:
        if sequence_based and step.tree_size > 0:
            # The baseline decodes each root-to-leaf path as its own
            # sequence, so the KV context it reads covers the redundant
            # per-path tokens (tree_path_tokens), not the deduplicated
            # tree positions the fused kernel scores.
            scored = batch_size * max(step.tree_path_tokens, 1)
            kernels = max(step.tree_leaves, 1)
            context = batch_size * (
                step.prefix_len + max(step.tree_path_tokens, 1)
            )
        else:
            scored = batch_size * max(step.llm_tokens_scored, 1)
            kernels = 1
            context = batch_size * (
                step.prefix_len + max(step.llm_tokens_scored, 1)
            )
        if isinstance(self.llm_latency, OffloadLatencyModel):
            return self.llm_latency.step_latency(scored, context)
        return self.llm_latency.step_latency(
            scored, context, num_kernel_batches=kernels
        )


def mean_tokens_per_step(results: Sequence[GenerationResult]) -> float:
    """Average verified tokens per decoding step across requests (Table 2)."""
    counts = [
        step.tokens_emitted for result in results for step in result.steps
    ]
    if not counts:
        return 0.0
    return float(np.mean(counts))
