"""Roofline step-latency model for LLM decoding on modeled hardware.

One decoding step (incremental token or tree-verification pass) costs, per
pipeline stage:

* **weight traffic** — every parameter on the stage's GPUs is read once
  (the dominant term for small batches; paper section 2's "reduced memory
  accesses" argument is about amortizing exactly this),
* **KV traffic** — the attention reads cached keys/values for every live
  context token of every request in the batch,
* **compute** — ~2 FLOPs per parameter per scored token,
* **kernel overhead** — fixed per-launch cost times launches per stage,
* **TP communication** — two all-reduces of the activations per layer,
* **PP communication** — activations cross the network between stages.

The stage time is ``max(memory, compute) + overhead + tp_comm`` (memory and
compute overlap on GPUs; overheads do not), and stages of a pipeline are
sequential for a single decoding step.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.cluster.hardware import ClusterSpec
from repro.cluster.models import kv_bytes_per_token
from repro.cluster.parallel import ParallelPlan
from repro.model.config import ModelConfig


@dataclass(frozen=True)
class StepCost:
    """Latency breakdown of one decoding step (seconds)."""

    weight_time: float
    kv_time: float
    compute_time: float
    overhead_time: float
    tp_comm_time: float
    pp_comm_time: float

    @property
    def total(self) -> float:
        """Stage-combined step latency (memory/compute overlapped)."""
        return (
            max(self.weight_time + self.kv_time, self.compute_time)
            + self.overhead_time
            + self.tp_comm_time
            + self.pp_comm_time
        )


class LatencyModel:
    """Analytic decoding-step latency for a (model, plan, cluster) triple.

    Args:
        model: Paper-scale architecture descriptor.
        plan: Parallelization plan (validated against ``cluster``).
        cluster: Target hardware.
        kernels_per_layer: GEMM/attention kernel launches per transformer
            layer per step (fused implementations use fewer; SpecInfer's
            fused tree kernel motivates making this explicit).
    """

    def __init__(
        self,
        model: ModelConfig,
        plan: ParallelPlan,
        cluster: ClusterSpec,
        kernels_per_layer: int = 6,
    ):
        plan.validate(model, cluster)
        self.model = model
        self.plan = plan
        self.cluster = cluster
        self.kernels_per_layer = kernels_per_layer

    # -- components -------------------------------------------------------------

    def _weight_time_per_stage(self) -> float:
        per_gpu = self.plan.weight_bytes_per_gpu(self.model)
        return per_gpu / self.cluster.gpu.sustained_bandwidth

    def _kv_time_per_stage(self, context_tokens: int) -> float:
        bytes_total = context_tokens * kv_bytes_per_token(
            self.model, self.plan.bytes_per_param
        )
        per_gpu = bytes_total / self.plan.total_gpus
        return per_gpu / self.cluster.gpu.sustained_bandwidth

    def _compute_time_per_stage(self, scored_tokens: int) -> float:
        flops = 2.0 * self.model.num_parameters() * scored_tokens
        per_gpu = flops / self.plan.total_gpus
        return per_gpu / self.cluster.gpu.sustained_flops

    def _overhead_per_stage(self, num_kernel_batches: int) -> float:
        layers = self.plan.layers_per_stage(self.model)
        launches = layers * self.kernels_per_layer * num_kernel_batches
        return launches * self.cluster.gpu.kernel_overhead

    def _tp_comm_per_stage(self, scored_tokens: int) -> float:
        tp = self.plan.tensor_parallel
        if tp == 1:
            return 0.0
        node = self.cluster.node
        layers = self.plan.layers_per_stage(self.model)
        volume = (
            scored_tokens * self.model.d_model * self.plan.bytes_per_param
        )
        # Ring all-reduce moves 2(tp-1)/tp of the volume; two all-reduces
        # per layer (post-attention, post-MLP).
        per_allreduce = (
            volume * 2 * (tp - 1) / tp / node.intra_node_bandwidth
            + node.intra_node_latency
        )
        return 2 * layers * per_allreduce

    def _pp_comm(self, scored_tokens: int) -> float:
        pp = self.plan.pipeline_stages
        if pp == 1:
            return 0.0
        volume = (
            scored_tokens * self.model.d_model * self.plan.bytes_per_param
        )
        per_boundary = (
            volume / self.cluster.inter_node_bandwidth
            + self.cluster.inter_node_latency
        )
        return (pp - 1) * per_boundary

    # -- public API ---------------------------------------------------------------

    def step_cost(
        self,
        scored_tokens: int,
        context_tokens: int,
        num_kernel_batches: int = 1,
    ) -> StepCost:
        """Latency breakdown for one decoding step.

        Args:
            scored_tokens: Token positions the step scores, summed over the
                batch (incremental: batch size; tree verification: sum of
                tree sizes).
            context_tokens: Live KV-cache tokens read, summed over the batch.
            num_kernel_batches: Independent kernel sweeps the step needs
                (tree-based decoding: 1; sequence-based decoding of a tree:
                one per root-to-leaf sequence — the Figure 11 distinction).
        """
        if scored_tokens < 1:
            raise ValueError("scored_tokens must be >= 1")
        pp = self.plan.pipeline_stages
        per_stage = StepCost(
            weight_time=self._weight_time_per_stage(),
            kv_time=self._kv_time_per_stage(context_tokens),
            compute_time=self._compute_time_per_stage(scored_tokens),
            overhead_time=self._overhead_per_stage(num_kernel_batches),
            tp_comm_time=self._tp_comm_per_stage(scored_tokens),
            pp_comm_time=0.0,
        )
        return StepCost(
            weight_time=per_stage.weight_time * pp,
            kv_time=per_stage.kv_time * pp,
            compute_time=per_stage.compute_time * pp,
            overhead_time=per_stage.overhead_time * pp,
            tp_comm_time=per_stage.tp_comm_time * pp,
            pp_comm_time=self._pp_comm(scored_tokens),
        )

    def verify_seconds(
        self,
        batch_size: int,
        tree_tokens: int,
        context_len: int,
    ) -> float:
        """Latency of one batched tree-verification pass.

        Every request in the batch scores a ``tree_tokens``-node tree (the
        pending root plus the speculated tokens) on top of a
        ``context_len``-token verified prefix; the tree rows themselves are
        live KV during the pass, so they count toward the attention reads.

        Args:
            batch_size: Requests verified in the fused pass.
            tree_tokens: Scored tree nodes per request (>= 1; incremental
                decoding is ``tree_tokens=1``).
            context_len: Verified prefix length per request.
        """
        if batch_size < 1:
            raise ValueError("batch_size must be >= 1")
        if tree_tokens < 1:
            raise ValueError("tree_tokens must be >= 1")
        return self.step_latency(
            batch_size * tree_tokens,
            batch_size * (context_len + tree_tokens),
        )

    def cost_per_verified_token(
        self,
        batch_size: int,
        tree,
        context_len: int = 128,
        expected_tokens_per_step: float = 1.0,
    ) -> float:
        """Seconds of verify time per committed token — the planner's unit.

        The quantity the dynamic tree planner minimizes (Sequoia's
        objective): the latency of one fused verification pass divided by
        the tokens the batch is expected to commit from it.

        Args:
            batch_size: Requests verified per pass.
            tree: The speculated tree — a :class:`~repro.tree.token_tree.
                TokenTree` (or anything sized) or a plain node count.
            context_len: Verified prefix length per request.
            expected_tokens_per_step: Expected committed tokens per request
                per pass (bonus token included), from the acceptance model.
        """
        tokens = len(tree) if hasattr(tree, "__len__") else int(tree)
        if expected_tokens_per_step <= 0:
            raise ValueError("expected_tokens_per_step must be > 0")
        seconds = self.verify_seconds(batch_size, tokens, context_len)
        return seconds / (batch_size * expected_tokens_per_step)

    def step_latency(
        self,
        scored_tokens: int,
        context_tokens: int,
        num_kernel_batches: int = 1,
    ) -> float:
        """Scalar step latency in seconds (see :meth:`step_cost`)."""
        # Stage times combine memory/compute by max *per stage*; summing the
        # component maxima stage-by-stage is equivalent for homogeneous
        # stages, which ours are.
        pp = self.plan.pipeline_stages
        per_stage_cost = self.step_cost(
            scored_tokens, context_tokens, num_kernel_batches
        )
        per_stage_total = (
            max(
                (per_stage_cost.weight_time + per_stage_cost.kv_time) / pp,
                per_stage_cost.compute_time / pp,
            )
            + per_stage_cost.overhead_time / pp
            + per_stage_cost.tp_comm_time / pp
        )
        return per_stage_total * pp + per_stage_cost.pp_comm_time
