"""Simulated hardware substrate: GPUs, clusters, parallelism, offloading.

The paper's latency evaluation (Figures 7, 8, 10, 11) runs LLaMA/OPT models
on AWS g5.12xlarge nodes (4x NVIDIA A10 24GB, 100 Gbps Ethernet).  Offline,
this package replaces the testbed with a first-order analytic model:

* :mod:`repro.cluster.hardware` -- device and cluster specs (A10 datasheet),
* :mod:`repro.cluster.models` -- paper-scale model descriptors
  (LLaMA-7B/65B, OPT-13B/30B and their SSMs) expressed as
  :class:`~repro.model.config.ModelConfig` so parameter counts are exact,
* :mod:`repro.cluster.parallel` -- Megatron-style tensor/pipeline
  parallelization plans with memory-fit validation,
* :mod:`repro.cluster.cost_model` -- roofline per-step latency (weight
  traffic, KV traffic, compute, kernel overhead, TP/PP communication),
* :mod:`repro.cluster.offload` -- FlexGen-style offloading step latency,
* :mod:`repro.cluster.simulator` -- replays the *measured* per-step traces
  of the algorithmic engines through the cost model to produce end-to-end
  per-token latencies for each serving system configuration.

The split matters: acceptance statistics (how many tokens each verification
step commits) come from real algorithm runs on the NumPy models; only the
*hardware timing* is modeled.
"""

from repro.cluster.hardware import (
    A10_GPU,
    AWS_G5_NODE,
    ClusterSpec,
    GpuSpec,
    NodeSpec,
    single_node_cluster,
    two_node_cluster,
)
from repro.cluster.models import PAPER_MODELS, paper_model
from repro.cluster.parallel import ParallelPlan
from repro.cluster.cost_model import LatencyModel, StepCost
from repro.cluster.energy import EnergyModel, EnergySpec, StepEnergy, replay_energy
from repro.cluster.offload import OffloadLatencyModel, OffloadSpec
from repro.cluster.simulator import (
    ServingSimulator,
    SimulatedLatency,
    SystemKind,
)

__all__ = [
    "GpuSpec",
    "NodeSpec",
    "ClusterSpec",
    "A10_GPU",
    "AWS_G5_NODE",
    "single_node_cluster",
    "two_node_cluster",
    "PAPER_MODELS",
    "paper_model",
    "ParallelPlan",
    "LatencyModel",
    "StepCost",
    "OffloadSpec",
    "OffloadLatencyModel",
    "EnergyModel",
    "EnergySpec",
    "StepEnergy",
    "replay_energy",
    "ServingSimulator",
    "SimulatedLatency",
    "SystemKind",
]
