"""What-if sweeps over the hardware cost model.

Deployment questions the paper's evaluation touches implicitly — how many
GPUs to give the LLM, how deep to speculate, how small the SSM can be —
answered systematically against the cost model, without running the
algorithms.  Each sweep returns plain data (lists of points) so benchmarks
and notebooks can render them.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional

from repro.cluster.cost_model import LatencyModel
from repro.cluster.hardware import ClusterSpec
from repro.cluster.parallel import ParallelPlan
from repro.metrics.acceptance import expected_tokens_per_step
from repro.model.config import ModelConfig


@dataclass(frozen=True)
class SweepPoint:
    """One configuration in a sweep.

    Attributes:
        x: The swept value (TP degree, depth, ...).
        latency: Per-token latency in seconds.
        label: Human-readable description of the point.
    """

    x: float
    latency: float
    label: str


def sweep_tensor_parallel(
    model: ModelConfig,
    cluster: ClusterSpec,
    context_tokens: int = 128,
    batch_size: int = 1,
) -> List[SweepPoint]:
    """Incremental per-token latency vs TP degree (within one node).

    Shows the diminishing return the paper's placements reflect: weight
    reads shrink with TP but all-reduce costs grow, so small models stop
    benefiting early.
    """
    points = []
    for tp in range(1, cluster.node.gpus_per_node + 1):
        plan = ParallelPlan(tensor_parallel=tp)
        try:
            latency_model = LatencyModel(model, plan, cluster)
        except ValueError:
            continue  # does not fit at this degree
        latency = latency_model.step_latency(
            batch_size, batch_size * context_tokens
        )
        points.append(SweepPoint(x=tp, latency=latency, label=f"tp={tp}"))
    if not points:
        raise ValueError(f"{model.name} fits no TP degree on this cluster")
    return points


def sweep_speculation_depth(
    llm: ModelConfig,
    ssm: ModelConfig,
    cluster: ClusterSpec,
    alpha: float,
    plan: Optional[ParallelPlan] = None,
    max_depth: int = 16,
    context_tokens: int = 128,
    tree_width: int = 3,
) -> List[SweepPoint]:
    """Predicted per-token latency vs speculation depth.

    Combines the acceptance closed form (``expected_tokens_per_step``) with
    the cost model: deeper speculation emits more tokens per step but costs
    more SSM steps and a bigger verification pass.  The minimum of this
    curve is the model-pair's optimal depth — the planning calculation
    behind the paper's choice of 8.
    """
    if not 0 <= alpha <= 1:
        raise ValueError("alpha must be in [0, 1]")
    plan = plan or ParallelPlan.for_model(llm, cluster)
    llm_latency = LatencyModel(llm, plan, cluster)
    ssm_latency = LatencyModel(ssm, ParallelPlan(), cluster)
    points = []
    for depth in range(1, max_depth + 1):
        tokens_per_step = expected_tokens_per_step(alpha, depth)
        tree_tokens = 1 + depth + (tree_width - 1)  # root + chain + branch
        verify = llm_latency.step_latency(
            tree_tokens, context_tokens + tree_tokens
        )
        speculate = depth * ssm_latency.step_latency(1, context_tokens)
        points.append(
            SweepPoint(
                x=depth,
                latency=(verify + speculate) / tokens_per_step,
                label=f"depth={depth}",
            )
        )
    return points


def sweep_ssm_size(
    llm: ModelConfig,
    cluster: ClusterSpec,
    alpha_by_scale: dict,
    plan: Optional[ParallelPlan] = None,
    depth: int = 8,
    context_tokens: int = 128,
) -> List[SweepPoint]:
    """Per-token latency vs SSM size, given alignment at each scale.

    Args:
        alpha_by_scale: Maps an SSM scale factor (fraction of LLM width) to
            the acceptance rate a pair at that scale achieves — bigger SSMs
            align better but cost more per speculation step.  The sweep
            exposes the sweet spot (the paper's 100-1000x size gap).
    """
    plan = plan or ParallelPlan.for_model(llm, cluster)
    llm_latency = LatencyModel(llm, plan, cluster)
    points = []
    for scale, alpha in sorted(alpha_by_scale.items()):
        if not 0 < scale <= 1:
            raise ValueError(f"scale must be in (0, 1], got {scale}")
        heads = max(1, int(llm.n_heads * scale))
        d_model = max(heads, int(llm.d_model * scale) // heads * heads)
        ssm = llm.scaled(
            d_model=d_model,
            n_heads=heads,
            n_layers=max(1, int(llm.n_layers * scale)),
            name=f"{llm.name}-x{scale}",
        )
        ssm_latency = LatencyModel(ssm, ParallelPlan(), cluster)
        tokens_per_step = expected_tokens_per_step(alpha, depth)
        verify = llm_latency.step_latency(
            1 + depth + 2, context_tokens + depth + 3
        )
        speculate = depth * ssm_latency.step_latency(1, context_tokens)
        points.append(
            SweepPoint(
                x=scale,
                latency=(verify + speculate) / tokens_per_step,
                label=f"ssm-scale={scale} (alpha={alpha})",
            )
        )
    return points


def best_point(points: List[SweepPoint]) -> SweepPoint:
    """The sweep's latency-minimizing configuration."""
    if not points:
        raise ValueError("empty sweep")
    return min(points, key=lambda p: p.latency)
