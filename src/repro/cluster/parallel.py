"""Megatron-style parallelization plans (paper section 5.1).

SpecInfer serves the LLM with tensor model parallelism *within* a node and
pipeline model parallelism *across* nodes; SSMs are small enough to fit on a
single GPU and are replicated with data parallelism.  A
:class:`ParallelPlan` captures one such placement and knows how to validate
itself against a cluster (degree fits, per-GPU weights fit in HBM).
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.cluster.hardware import ClusterSpec
from repro.model.config import ModelConfig


@dataclass(frozen=True)
class ParallelPlan:
    """Tensor/pipeline parallel placement for one LLM.

    Attributes:
        tensor_parallel: TP degree (GPUs per pipeline stage; intra-node).
        pipeline_stages: PP degree (one stage per node in the paper's setup).
        bytes_per_param: Serving precision (2 = FP16).
    """

    tensor_parallel: int = 1
    pipeline_stages: int = 1
    bytes_per_param: int = 2

    def __post_init__(self) -> None:
        if self.tensor_parallel < 1 or self.pipeline_stages < 1:
            raise ValueError("parallel degrees must be >= 1")
        if self.bytes_per_param not in (1, 2, 4):
            raise ValueError("bytes_per_param must be 1, 2 or 4")

    @property
    def total_gpus(self) -> int:
        return self.tensor_parallel * self.pipeline_stages

    def weight_bytes_per_gpu(self, model: ModelConfig) -> float:
        """Model weight bytes resident on each GPU."""
        total = model.num_parameters() * self.bytes_per_param
        return total / self.total_gpus

    def layers_per_stage(self, model: ModelConfig) -> float:
        """Transformer layers per pipeline stage."""
        return model.n_layers / self.pipeline_stages

    def validate(self, model: ModelConfig, cluster: ClusterSpec,
                 kv_budget_fraction: float = 0.3) -> None:
        """Check the plan fits the cluster; raises ``ValueError`` otherwise.

        Args:
            model: The model being placed.
            cluster: The target cluster.
            kv_budget_fraction: Fraction of HBM reserved for KV cache and
                activations; weights must fit in the remainder.
        """
        if self.tensor_parallel > cluster.node.gpus_per_node:
            raise ValueError(
                f"tensor parallel degree {self.tensor_parallel} exceeds "
                f"{cluster.node.gpus_per_node} GPUs per node"
            )
        if self.pipeline_stages > cluster.num_nodes:
            raise ValueError(
                f"pipeline stages {self.pipeline_stages} exceed "
                f"{cluster.num_nodes} nodes"
            )
        budget = cluster.gpu.hbm_bytes * (1 - kv_budget_fraction)
        per_gpu = self.weight_bytes_per_gpu(model)
        if per_gpu > budget:
            raise ValueError(
                f"{model.name} needs {per_gpu / 1e9:.1f} GB weights per GPU "
                f"under plan tp={self.tensor_parallel} pp="
                f"{self.pipeline_stages}, but only {budget / 1e9:.1f} GB of "
                f"HBM is available for weights"
            )

    @classmethod
    def for_model(cls, model: ModelConfig, cluster: ClusterSpec,
                  bytes_per_param: int = 2) -> "ParallelPlan":
        """Smallest valid plan: grow TP within a node, then PP across nodes."""
        for pp in range(1, cluster.num_nodes + 1):
            for tp in range(1, cluster.node.gpus_per_node + 1):
                plan = cls(tensor_parallel=tp, pipeline_stages=pp,
                           bytes_per_param=bytes_per_param)
                try:
                    plan.validate(model, cluster)
                    return plan
                except ValueError:
                    continue
        raise ValueError(
            f"{model.name} does not fit on the cluster at any supported "
            f"parallelization"
        )
