"""Offloading-based inference latency model (paper section 6.3, Figure 8).

FlexGen-style serving keeps all weights in CPU DRAM and streams them to a
single GPU layer-by-layer each decoding step, so per-step latency is
dominated by host-to-device PCIe traffic — which is *independent of how many
tokens the step scores*.  That is exactly why SpecInfer helps most here
(2.6-3.5x in the paper): verifying a whole token tree costs one weight
stream, the same as decoding one token, while committing several tokens.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.cluster.hardware import NodeSpec
from repro.cluster.models import kv_bytes_per_token
from repro.model.config import ModelConfig


@dataclass(frozen=True)
class OffloadSpec:
    """Offloading configuration.

    Attributes:
        node: Host node (provides the GPU and the CPU-GPU link).
        bytes_per_param: Serving precision.
        overlap_efficiency: Fraction of the weight stream hidden behind
            compute via pipelined prefetching (FlexGen overlaps transfers
            of layer i+1 with compute of layer i).
    """

    node: NodeSpec
    bytes_per_param: int = 2
    overlap_efficiency: float = 0.15

    def __post_init__(self) -> None:
        if not 0 <= self.overlap_efficiency < 1:
            raise ValueError("overlap_efficiency must be in [0, 1)")

    def validate(self, model: ModelConfig) -> None:
        """The model must fit in host DRAM but *not* in GPU HBM (otherwise
        offloading is pointless and the distributed path applies)."""
        weights = model.num_parameters() * self.bytes_per_param
        if weights > self.node.dram_bytes:
            raise ValueError(
                f"{model.name} ({weights / 1e9:.0f} GB) exceeds host DRAM"
            )


class OffloadLatencyModel:
    """Per-step latency for single-GPU offloaded decoding."""

    def __init__(self, model: ModelConfig, spec: OffloadSpec):
        spec.validate(model)
        self.model = model
        self.spec = spec

    def weight_stream_time(self) -> float:
        """Seconds to move all weights CPU -> GPU once (one decoding step)."""
        weights = self.model.num_parameters() * self.spec.bytes_per_param
        effective = weights * (1 - self.spec.overlap_efficiency)
        return effective / self.spec.node.cpu_gpu_bandwidth

    def step_latency(self, scored_tokens: int, context_tokens: int) -> float:
        """One offloaded decoding step.

        The weight stream dominates; GPU-side compute and KV reads are
        modeled and overlap with the stream (max), kernel overhead adds.
        """
        if scored_tokens < 1:
            raise ValueError("scored_tokens must be >= 1")
        gpu = self.spec.node.gpu
        compute = (
            2.0 * self.model.num_parameters() * scored_tokens
            / gpu.sustained_flops
        )
        kv = (
            context_tokens
            * kv_bytes_per_token(self.model, self.spec.bytes_per_param)
            / gpu.sustained_bandwidth
        )
        overhead = self.model.n_layers * 6 * gpu.kernel_overhead
        return max(self.weight_stream_time(), compute + kv) + overhead
