"""Paper-scale model descriptors for the cost model.

These :class:`~repro.model.config.ModelConfig` instances describe the real
architectures the paper serves, so ``num_parameters()`` yields the correct
weight volumes (the first-order driver of decoding latency).  They are never
instantiated as NumPy weights — only their dimensions feed the cost model.
"""

from __future__ import annotations

from typing import Dict

from repro.model.config import ModelConfig

#: Architectures from the paper's evaluation (section 6.1 / appendix A.3.4).
#: LLaMA models use a SwiGLU FFN (three weight matrices at intermediate
#: width w); this repository's MLP has two, so LLaMA descriptors carry an
#: *effective* d_ff = 1.5w that preserves the exact FFN parameter count —
#: what the cost and energy models consume.
PAPER_MODELS: Dict[str, ModelConfig] = {
    # LLMs
    "llama-7b": ModelConfig(
        vocab_size=32000, d_model=4096, n_layers=32, n_heads=32,
        d_ff=16512, max_seq_len=2048, name="llama-7b",  # 1.5 x 11008
    ),
    "opt-13b": ModelConfig(
        vocab_size=50272, d_model=5120, n_layers=40, n_heads=40,
        d_ff=20480, max_seq_len=2048, name="opt-13b",
    ),
    "opt-30b": ModelConfig(
        vocab_size=50272, d_model=7168, n_layers=48, n_heads=56,
        d_ff=28672, max_seq_len=2048, name="opt-30b",
    ),
    "llama-65b": ModelConfig(
        vocab_size=32000, d_model=8192, n_layers=80, n_heads=64,
        d_ff=33024, max_seq_len=2048, name="llama-65b",  # 1.5 x 22016
    ),
    # SSMs
    "llama-68m": ModelConfig(
        vocab_size=32000, d_model=768, n_layers=2, n_heads=12,
        d_ff=4608, max_seq_len=2048, name="llama-68m",  # 1.5 x 3072
    ),
    "opt-125m": ModelConfig(
        vocab_size=50272, d_model=768, n_layers=12, n_heads=12,
        d_ff=3072, max_seq_len=2048, name="opt-125m",
    ),
}


def paper_model(name: str) -> ModelConfig:
    """Look up a paper-scale model descriptor by name."""
    if name not in PAPER_MODELS:
        raise KeyError(
            f"unknown paper model {name!r}; known: {sorted(PAPER_MODELS)}"
        )
    return PAPER_MODELS[name]


def kv_bytes_per_token(config: ModelConfig, bytes_per_value: int = 2) -> int:
    """KV-cache bytes appended per token (keys + values, all layers)."""
    return 2 * config.n_layers * config.d_model * bytes_per_value
