"""Hardware specifications for the simulated serving platform.

Numbers come from public datasheets for the paper's testbed (AWS
g5.12xlarge: 4x NVIDIA A10 24GB per node, PCIe-attached GPUs, 100 Gbps
inter-node Ethernet).  Efficiency factors derate peaks to sustained rates, a
standard first-order correction for roofline models.
"""

from __future__ import annotations

from dataclasses import dataclass

GB = 1e9
GBPS = 1e9  # bytes per second
TFLOPS = 1e12


@dataclass(frozen=True)
class GpuSpec:
    """One GPU's datasheet plus sustained-efficiency derating.

    Attributes:
        name: Marketing name.
        mem_bandwidth: Peak device-memory bandwidth, bytes/s.
        fp16_flops: Peak FP16 tensor throughput, FLOP/s.
        hbm_bytes: Device memory capacity, bytes.
        mem_efficiency: Sustained fraction of peak bandwidth.
        compute_efficiency: Sustained fraction of peak FLOPs for decoding
            GEMMs (batched verification reaches decent tensor-core MFU;
            calibrated so the Figure 7 batch-size crossovers land where the
            paper's do).
        kernel_overhead: Fixed per-kernel-launch cost, seconds.
    """

    name: str
    mem_bandwidth: float
    fp16_flops: float
    hbm_bytes: float
    mem_efficiency: float = 0.8
    compute_efficiency: float = 0.65
    kernel_overhead: float = 8e-6

    def __post_init__(self) -> None:
        if self.mem_bandwidth <= 0 or self.fp16_flops <= 0:
            raise ValueError("bandwidth and flops must be positive")
        if not 0 < self.mem_efficiency <= 1:
            raise ValueError("mem_efficiency must be in (0, 1]")
        if not 0 < self.compute_efficiency <= 1:
            raise ValueError("compute_efficiency must be in (0, 1]")

    @property
    def sustained_bandwidth(self) -> float:
        return self.mem_bandwidth * self.mem_efficiency

    @property
    def sustained_flops(self) -> float:
        return self.fp16_flops * self.compute_efficiency


@dataclass(frozen=True)
class NodeSpec:
    """One compute node.

    Attributes:
        gpu: GPU model installed.
        gpus_per_node: GPU count.
        intra_node_bandwidth: Effective GPU-to-GPU bandwidth within the
            node (PCIe switch on g5 instances — no NVLink), bytes/s.
        intra_node_latency: Per-collective latency within a node, seconds.
        cpu_gpu_bandwidth: Host-to-device PCIe bandwidth (offloading path),
            bytes/s.
        dram_bytes: Host DRAM capacity, bytes.
    """

    gpu: GpuSpec
    gpus_per_node: int = 4
    intra_node_bandwidth: float = 20 * GBPS
    intra_node_latency: float = 12e-6
    cpu_gpu_bandwidth: float = 20 * GBPS
    dram_bytes: float = 192 * GB

    def __post_init__(self) -> None:
        if self.gpus_per_node < 1:
            raise ValueError("gpus_per_node must be >= 1")


@dataclass(frozen=True)
class ClusterSpec:
    """A homogeneous cluster of nodes.

    Attributes:
        node: Per-node spec.
        num_nodes: Node count.
        inter_node_bandwidth: Network bandwidth between nodes, bytes/s
            (100 Gbps Ethernet = 12.5 GB/s).
        inter_node_latency: Per-message network latency, seconds.
    """

    node: NodeSpec
    num_nodes: int = 1
    inter_node_bandwidth: float = 12.5 * GBPS
    inter_node_latency: float = 30e-6

    def __post_init__(self) -> None:
        if self.num_nodes < 1:
            raise ValueError("num_nodes must be >= 1")

    @property
    def total_gpus(self) -> int:
        return self.num_nodes * self.node.gpus_per_node

    @property
    def gpu(self) -> GpuSpec:
        return self.node.gpu


#: NVIDIA A10: 24 GB GDDR6 @ 600 GB/s, 125 TFLOPS FP16 tensor.
A10_GPU = GpuSpec(
    name="A10",
    mem_bandwidth=600 * GBPS,
    fp16_flops=125 * TFLOPS,
    hbm_bytes=24 * GB,
)

#: AWS g5.12xlarge: 4x A10, PCIe interconnect, 192 GB DRAM.
AWS_G5_NODE = NodeSpec(gpu=A10_GPU)


def single_node_cluster() -> ClusterSpec:
    """One g5.12xlarge node (LLaMA-7B and OPT-30B experiments)."""
    return ClusterSpec(node=AWS_G5_NODE, num_nodes=1)


def two_node_cluster() -> ClusterSpec:
    """Two g5.12xlarge nodes over 100 Gbps (LLaMA-65B experiments)."""
    return ClusterSpec(node=AWS_G5_NODE, num_nodes=2)
