"""Energy model for decoding steps (paper section 2's energy argument).

The paper argues that reduced accesses to LLM parameters "directly
translate to decreased energy consumption, since accessing GPU HBM consumes
two or three orders of magnitude more energy than floating point arithmetic
operations".  This module quantifies that: per decoding step,

* every resident parameter byte is read from device memory once,
* the KV cache contributes context-proportional traffic,
* compute contributes ~2 FLOPs per parameter per scored token,
* offloaded serving additionally pays host-to-device transfer energy,

each priced with standard per-operation energy figures (DRAM/GDDR access
O(10) pJ/byte, FP16 FLOP O(1) pJ — the 'two to three orders of magnitude'
per-bit gap the paper cites).  SpecInfer's win is structural: a tree
verification step pays the (dominant) weight-read energy *once* for several
committed tokens.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.cluster.models import kv_bytes_per_token
from repro.cluster.parallel import ParallelPlan
from repro.model.config import ModelConfig

PICO = 1e-12


@dataclass(frozen=True)
class EnergySpec:
    """Per-operation energy prices.

    Defaults reflect published figures for GDDR6/HBM-class memories and
    FP16 tensor arithmetic on 7-8nm GPUs.

    Attributes:
        memory_pj_per_byte: Device-memory access energy (pJ/byte).
        flop_pj: Energy per FP16 FLOP (pJ).
        pcie_pj_per_byte: Host-device transfer energy (pJ/byte).
        network_pj_per_byte: Inter-node network energy (pJ/byte).
    """

    memory_pj_per_byte: float = 30.0
    flop_pj: float = 0.15
    pcie_pj_per_byte: float = 60.0
    network_pj_per_byte: float = 80.0

    def __post_init__(self) -> None:
        for field_name in ("memory_pj_per_byte", "flop_pj",
                           "pcie_pj_per_byte", "network_pj_per_byte"):
            if getattr(self, field_name) <= 0:
                raise ValueError(f"{field_name} must be positive")


@dataclass(frozen=True)
class StepEnergy:
    """Energy breakdown of one decoding step, in joules."""

    weight_read: float
    kv_read: float
    compute: float
    transfer: float

    @property
    def total(self) -> float:
        return self.weight_read + self.kv_read + self.compute + self.transfer


class EnergyModel:
    """Per-step decoding energy for a (model, plan) pair.

    Args:
        model: Paper-scale architecture descriptor.
        plan: Parallelization plan (determines resident weights; all GPUs
            of the plan read their shards each step, so total weight-read
            energy is plan-independent — parallelism buys time, not joules).
        spec: Per-operation energy prices.
        offloaded: Whether weights stream from host DRAM each step
            (offloading pays PCIe energy on top of device reads).
    """

    def __init__(
        self,
        model: ModelConfig,
        plan: ParallelPlan = ParallelPlan(),
        spec: EnergySpec = EnergySpec(),
        offloaded: bool = False,
    ):
        self.model = model
        self.plan = plan
        self.spec = spec
        self.offloaded = offloaded

    def step_energy(self, scored_tokens: int, context_tokens: int) -> StepEnergy:
        """Energy of one decoding step scoring ``scored_tokens``.

        Args:
            scored_tokens: Token positions scored (batch x per-request).
            context_tokens: KV-cache tokens read (batch x context).
        """
        if scored_tokens < 1:
            raise ValueError("scored_tokens must be >= 1")
        weight_bytes = self.model.num_parameters() * self.plan.bytes_per_param
        kv_bytes = context_tokens * kv_bytes_per_token(
            self.model, self.plan.bytes_per_param
        )
        flops = 2.0 * self.model.num_parameters() * scored_tokens
        transfer = 0.0
        if self.offloaded:
            transfer = weight_bytes * self.spec.pcie_pj_per_byte * PICO
        return StepEnergy(
            weight_read=weight_bytes * self.spec.memory_pj_per_byte * PICO,
            kv_read=kv_bytes * self.spec.memory_pj_per_byte * PICO,
            compute=flops * self.spec.flop_pj * PICO,
            transfer=transfer,
        )

    def energy_per_token(
        self,
        scored_tokens: int,
        context_tokens: int,
        tokens_emitted: float,
    ) -> float:
        """Joules per committed token for a step emitting ``tokens_emitted``."""
        if tokens_emitted <= 0:
            raise ValueError("tokens_emitted must be positive")
        return self.step_energy(scored_tokens, context_tokens).total / (
            tokens_emitted
        )


def replay_energy(model: EnergyModel, result, batch_size: int = 1) -> float:
    """Total decoding energy (J) of a generation trace.

    Mirrors :meth:`repro.cluster.simulator.ServingSimulator.replay` but
    integrates joules instead of seconds (SSM speculation energy is
    negligible at the paper's 100-1000x size ratios and is omitted).
    """
    total = 0.0
    for step in result.steps:
        scored = batch_size * max(step.llm_tokens_scored, 1)
        context = batch_size * (step.prefix_len + max(step.llm_tokens_scored, 1))
        total += model.step_energy(scored, context).total
    return total
