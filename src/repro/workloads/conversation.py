"""Multi-turn conversation workloads.

The paper's datasets "simulate real-world conversation traces": each turn
appends the user's prompt to the accumulated history and the model's reply
extends it further, so context length grows turn over turn — the regime
where KV-cache memory pressure (section 2) and per-step weight reads
dominate.  :class:`ConversationBuilder` produces such multi-turn request
sequences; :func:`serve_conversation` runs one conversation through an
engine, threading the history.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Sequence

import numpy as np


@dataclass
class ConversationTurn:
    """One turn: the user prompt tokens and the model's reply budget."""

    user_tokens: np.ndarray
    reply_budget: int


@dataclass
class Conversation:
    """A scripted multi-turn conversation."""

    turns: List[ConversationTurn] = field(default_factory=list)

    @property
    def num_turns(self) -> int:
        return len(self.turns)

    def max_context(self) -> int:
        """Worst-case total context if every reply uses its full budget."""
        return sum(
            len(t.user_tokens) + t.reply_budget for t in self.turns
        )


class ConversationBuilder:
    """Samples scripted conversations from a prompt dataset.

    Args:
        dataset: A prompt source with ``sample_prompt(max_len)``.
        turns: Turns per conversation.
        user_len: Maximum user-prompt length per turn.
        reply_budget: Reply tokens per turn.
        seed: RNG seed for turn-length jitter.
    """

    def __init__(self, dataset, turns: int = 3, user_len: int = 10,
                 reply_budget: int = 12, seed: int = 0):
        if turns < 1:
            raise ValueError("turns must be >= 1")
        if reply_budget < 1:
            raise ValueError("reply_budget must be >= 1")
        self.dataset = dataset
        self.turns = turns
        self.user_len = user_len
        self.reply_budget = reply_budget
        self._rng = np.random.default_rng(seed)

    def build(self) -> Conversation:
        """One scripted conversation."""
        conversation = Conversation()
        for _ in range(self.turns):
            budget = int(self._rng.integers(
                max(1, self.reply_budget // 2), self.reply_budget + 1
            ))
            conversation.turns.append(
                ConversationTurn(
                    user_tokens=self.dataset.sample_prompt(
                        max_len=self.user_len
                    ),
                    reply_budget=budget,
                )
            )
        return conversation

    def build_many(self, n: int) -> List[Conversation]:
        return [self.build() for _ in range(n)]


@dataclass
class ConversationResult:
    """Outcome of serving one conversation.

    Attributes:
        replies: The model's reply tokens per turn.
        contexts: Context length at the *start* of each turn's generation.
        llm_steps: LLM decoding steps per turn.
    """

    replies: List[List[int]] = field(default_factory=list)
    contexts: List[int] = field(default_factory=list)
    llm_steps: List[int] = field(default_factory=list)

    @property
    def total_tokens(self) -> int:
        return sum(len(r) for r in self.replies)

    @property
    def total_llm_steps(self) -> int:
        return sum(self.llm_steps)


def serve_conversation(engine, conversation: Conversation,
                       max_context: int = 0) -> ConversationResult:
    """Run a conversation through a generation engine, threading history.

    Args:
        engine: Any engine with ``generate(prompt, config)`` (incremental
            or speculative).
        conversation: The scripted turns.
        max_context: Truncate the running history to this many most-recent
            tokens (0 = unlimited; use the model's window minus the reply
            budget for long chats).
    """
    from repro.engine.generation import GenerationConfig

    result = ConversationResult()
    history: List[int] = []
    for turn in conversation.turns:
        history.extend(int(t) for t in turn.user_tokens)
        if max_context:
            history = history[-max_context:]
        result.contexts.append(len(history))
        generation = engine.generate(
            list(history),
            GenerationConfig(max_new_tokens=turn.reply_budget,
                             stop_on_eos=False),
        )
        result.replies.append(list(generation.tokens))
        result.llm_steps.append(generation.num_llm_steps)
        history.extend(generation.tokens)
    return result
