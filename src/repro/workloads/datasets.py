"""Synthetic prompt datasets standing in for the paper's five benchmarks.

The paper uses *only the prompts* of Alpaca, ChatGPT Prompts (CP), WebQA,
Chatbot Instruction Prompts (CIP) and PIQA "to simulate real-world
conversation traces" (section 6.1).  What differs across datasets, as far as
SpecInfer's metrics are concerned, is how predictable the LLM's continuations
are and how well the SSM tracks the LLM on that domain — visible in Table 1
as per-dataset verification success rates (CIP easiest at 70% top-1 greedy,
WebQA hardest at 62%).

Each synthetic dataset therefore carries:

* a prompt-length distribution and a Zipf exponent over the toy vocabulary
  (longer, more repetitive prompts = more predictable continuations), and
* a recommended SSM ``alignment`` reproducing that dataset's relative
  difficulty, used by benchmarks to instantiate per-dataset
  :class:`~repro.model.coupled.CoupledSSM` pairs.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Tuple

import numpy as np

#: Canonical dataset order used across all tables in the paper.
DATASET_NAMES: Tuple[str, ...] = ("Alpaca", "CP", "WebQA", "CIP", "PIQA")


@dataclass(frozen=True)
class DatasetSpec:
    """Statistical profile of a synthetic prompt dataset.

    Attributes:
        name: Paper dataset this profile stands in for.
        mean_prompt_len: Mean prompt length in tokens.
        std_prompt_len: Std-dev of prompt length.
        zipf_exponent: Skew of the token unigram distribution (higher =
            more repetitive prompts).
        alignment: Recommended ``CoupledSSM`` alignment reproducing this
            dataset's Table 1 difficulty ordering.
        seed: Base RNG seed so datasets differ deterministically.
    """

    name: str
    mean_prompt_len: float
    std_prompt_len: float
    zipf_exponent: float
    alignment: float
    seed: int

    def __post_init__(self) -> None:
        if self.mean_prompt_len < 1:
            raise ValueError("mean_prompt_len must be >= 1")
        if not 0 < self.alignment <= 1:
            raise ValueError("alignment must be in (0, 1]")


def dataset_specs() -> Dict[str, DatasetSpec]:
    """Profiles for the five paper datasets.

    Alignments are calibrated so greedy top-1 success lands in the paper's
    62-70% band with the ordering WebQA < PIQA < Alpaca < CP < CIP.
    """
    return {
        "Alpaca": DatasetSpec("Alpaca", 24, 8, 1.2, alignment=0.845, seed=11),
        "CP": DatasetSpec("CP", 32, 12, 1.1, alignment=0.855, seed=22),
        "WebQA": DatasetSpec("WebQA", 12, 4, 1.4, alignment=0.815, seed=33),
        "CIP": DatasetSpec("CIP", 28, 10, 1.15, alignment=0.865, seed=44),
        "PIQA": DatasetSpec("PIQA", 16, 6, 1.3, alignment=0.825, seed=55),
    }


class PromptDataset:
    """A reproducible stream of prompts drawn from a :class:`DatasetSpec`."""

    def __init__(self, spec: DatasetSpec, vocab_size: int,
                 reserved_low: int = 1):
        """
        Args:
            spec: The dataset profile.
            vocab_size: Toy vocabulary size; prompt tokens are drawn from
                ``[reserved_low, vocab_size)`` so special ids (EOS=0) never
                appear inside prompts.
            reserved_low: Number of low token ids to exclude.
        """
        if vocab_size - reserved_low < 2:
            raise ValueError("vocabulary too small for prompt sampling")
        self.spec = spec
        self.vocab_size = vocab_size
        self.reserved_low = reserved_low
        self._rng = np.random.default_rng(spec.seed)
        # Zipf ranks over the usable vocab: token (reserved_low + r) has
        # probability proportional to 1 / (r + 1)^s.
        usable = vocab_size - reserved_low
        ranks = np.arange(1, usable + 1, dtype=np.float64)
        weights = ranks ** (-spec.zipf_exponent)
        self._probs = weights / weights.sum()

    def sample_prompt(self, max_len: int = 0) -> np.ndarray:
        """Draw one prompt; optionally truncated to ``max_len`` tokens."""
        spec = self.spec
        length = max(2, int(self._rng.normal(spec.mean_prompt_len,
                                             spec.std_prompt_len)))
        if max_len:
            length = min(length, max_len)
        tokens = self._rng.choice(
            np.arange(self.reserved_low, self.vocab_size),
            size=length,
            p=self._probs,
        )
        return tokens.astype(np.intp)

    def sample_prompts(self, n: int, max_len: int = 0) -> List[np.ndarray]:
        """Draw ``n`` prompts."""
        return [self.sample_prompt(max_len=max_len) for _ in range(n)]


def make_dataset(name: str, vocab_size: int) -> PromptDataset:
    """Construct the named synthetic dataset over a toy vocabulary."""
    specs = dataset_specs()
    if name not in specs:
        raise KeyError(
            f"unknown dataset {name!r}; expected one of {DATASET_NAMES}"
        )
    return PromptDataset(specs[name], vocab_size)
