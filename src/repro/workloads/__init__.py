"""Workloads: synthetic prompt datasets, training corpus, toy tokenizer.

The paper evaluates on prompts from five datasets (Alpaca, ChatGPT Prompts,
WebQA, Chatbot Instruction Prompts, PIQA) and boost-tunes on OpenWebText.
Offline stand-ins live here; see DESIGN.md's substitution table.
"""

from repro.workloads.datasets import (
    DATASET_NAMES,
    DatasetSpec,
    PromptDataset,
    dataset_specs,
    make_dataset,
)
from repro.workloads.arrival import (
    Arrival,
    PoissonArrivals,
    UniformArrivals,
    drive_manager,
    sort_arrivals,
)
from repro.workloads.conversation import (
    Conversation,
    ConversationBuilder,
    ConversationResult,
    ConversationTurn,
    serve_conversation,
)
from repro.workloads.corpus import MarkovCorpus, ZipfCorpus
from repro.workloads.tokenizer import ToyTokenizer

__all__ = [
    "DATASET_NAMES",
    "DatasetSpec",
    "PromptDataset",
    "dataset_specs",
    "make_dataset",
    "MarkovCorpus",
    "ZipfCorpus",
    "ToyTokenizer",
    "Arrival",
    "PoissonArrivals",
    "UniformArrivals",
    "drive_manager",
    "sort_arrivals",
    "Conversation",
    "ConversationBuilder",
    "ConversationResult",
    "ConversationTurn",
    "serve_conversation",
]
