"""A tiny word-level tokenizer so examples can speak strings.

The algorithmic layer works on integer token ids; this tokenizer exists for
the runnable examples, mapping whitespace-separated words to ids with a
fixed special-token layout (``<eos>`` = 0, ``<unk>`` = 1).
"""

from __future__ import annotations

from typing import Dict, Iterable, List

EOS_TOKEN = "<eos>"
UNK_TOKEN = "<unk>"


class ToyTokenizer:
    """Word-level tokenizer with a frozen vocabulary."""

    def __init__(self, words: Iterable[str]):
        """Build a vocabulary from ``words`` (deduplicated, order-preserving)."""
        self._id_to_word: List[str] = [EOS_TOKEN, UNK_TOKEN]
        seen = set(self._id_to_word)
        for word in words:
            if word not in seen:
                seen.add(word)
                self._id_to_word.append(word)
        self._word_to_id: Dict[str, int] = {
            w: i for i, w in enumerate(self._id_to_word)
        }

    @classmethod
    def from_text(cls, text: str) -> "ToyTokenizer":
        """Build from the words of a text blob."""
        return cls(text.split())

    @property
    def vocab_size(self) -> int:
        return len(self._id_to_word)

    @property
    def eos_id(self) -> int:
        return 0

    @property
    def unk_id(self) -> int:
        return 1

    def encode(self, text: str) -> List[int]:
        """Text to token ids (unknown words map to ``<unk>``)."""
        return [
            self._word_to_id.get(word, self.unk_id) for word in text.split()
        ]

    def decode(self, ids: Iterable[int]) -> str:
        """Token ids to text; stops at EOS."""
        words = []
        for token_id in ids:
            if token_id == self.eos_id:
                break
            if not 0 <= token_id < self.vocab_size:
                raise ValueError(f"token id {token_id} out of range")
            words.append(self._id_to_word[token_id])
        return " ".join(words)

    def word(self, token_id: int) -> str:
        """The surface form of one token id."""
        if not 0 <= token_id < self.vocab_size:
            raise ValueError(f"token id {token_id} out of range")
        return self._id_to_word[token_id]
