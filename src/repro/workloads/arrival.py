"""Request arrival processes for serving experiments.

The paper's serving benchmarks submit a fixed batch up front; real serving
sees requests arrive over time.  This module generates arrival schedules —
Poisson (memoryless, the standard open-loop model) and uniform — in the
request manager's iteration clock, so load studies (queueing delay vs
arrival rate, continuous-batching occupancy) can run on the same runtime.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterator, List, Optional

import numpy as np


@dataclass(frozen=True)
class Arrival:
    """One scheduled request arrival.

    Attributes:
        iteration: Scheduler iteration at which the request arrives.
        prompt: The request's prompt tokens.
        request_id: Stable tie-break key for arrivals that share an
            iteration — the schedule's draw order.  Simultaneous arrivals
            are submitted in ``(iteration, request_id)`` order everywhere
            (replay and gateway admission), so the submission order cannot
            drift with platform-dependent sort behavior.
    """

    iteration: int
    prompt: np.ndarray
    request_id: int = 0


def sort_arrivals(arrivals: List[Arrival]) -> List[Arrival]:
    """Arrivals in canonical submission order: ``(iteration, request_id)``.

    Every consumer of a schedule (the replay driver, the gateway's load
    generators) must order simultaneous arrivals identically or admission
    order — and therefore queueing metrics — diverges between them.
    """
    return sorted(arrivals, key=lambda a: (a.iteration, a.request_id))


class PoissonArrivals:
    """Poisson arrival schedule over manager iterations.

    Args:
        rate: Expected arrivals per iteration.
        dataset: A prompt source with ``sample_prompt(max_len)`` (any
            :class:`~repro.workloads.datasets.PromptDataset`).
        seed: RNG seed.
        max_prompt_len: Truncation for sampled prompts.
    """

    def __init__(self, rate: float, dataset, seed: int = 0,
                 max_prompt_len: int = 0):
        if rate <= 0:
            raise ValueError("rate must be positive")
        self.rate = rate
        self.dataset = dataset
        self.max_prompt_len = max_prompt_len
        self._rng = np.random.default_rng(seed)

    def schedule(self, num_requests: int) -> List[Arrival]:
        """Arrival times for ``num_requests`` requests.

        Inter-arrival gaps are exponential with mean ``1 / rate``; times are
        floored to integer iterations (multiple arrivals may share one).
        Simultaneous arrivals are tie-broken by the stable
        ``(iteration, request_id)`` key — ``request_id`` is the RNG draw
        order — so replay and gateway admission agree on submission order
        across platforms.
        """
        if num_requests < 1:
            raise ValueError("num_requests must be >= 1")
        gaps = self._rng.exponential(1.0 / self.rate, size=num_requests)
        times = np.floor(np.cumsum(gaps)).astype(int)
        return sort_arrivals([
            Arrival(
                iteration=int(t),
                prompt=self.dataset.sample_prompt(max_len=self.max_prompt_len),
                request_id=i,
            )
            for i, t in enumerate(times)
        ])


class UniformArrivals:
    """Deterministic fixed-gap arrivals (closed-form comparisons)."""

    def __init__(self, gap: int, dataset, max_prompt_len: int = 0):
        if gap < 0:
            raise ValueError("gap must be >= 0")
        self.gap = gap
        self.dataset = dataset
        self.max_prompt_len = max_prompt_len

    def schedule(self, num_requests: int) -> List[Arrival]:
        if num_requests < 1:
            raise ValueError("num_requests must be >= 1")
        return [
            Arrival(
                iteration=i * self.gap,
                prompt=self.dataset.sample_prompt(max_len=self.max_prompt_len),
                request_id=i,
            )
            for i in range(num_requests)
        ]


def drive_manager(manager, arrivals: List[Arrival], config=None,
                  max_iterations: int = 100000) -> List[int]:
    """Run a request manager against an arrival schedule.

    Submits each arrival at its scheduled iteration (running idle
    iterations as needed), then drains.  Returns the submitted request ids
    in arrival order.
    """
    from repro.engine.generation import GenerationConfig

    config = config or GenerationConfig()
    pending = sort_arrivals(arrivals)
    ids: List[int] = []
    i = 0
    while i < len(pending):
        # Submit everything scheduled for the current iteration.
        while i < len(pending) and pending[i].iteration <= manager.iteration:
            ids.append(manager.submit(pending[i].prompt, config))
            i += 1
        if i < len(pending):
            manager.run_iteration()
            if manager.iteration > max_iterations:
                raise RuntimeError("arrival schedule never drained")
    manager.run_until_complete(max_iterations=max_iterations)
    return ids
