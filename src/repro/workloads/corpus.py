"""Synthetic training corpora (the OpenWebText stand-in).

Two generators:

* :class:`ZipfCorpus` -- i.i.d. Zipf-distributed tokens; maximally simple,
  used when only volume matters.
* :class:`MarkovCorpus` -- a sparse random first-order Markov chain over the
  vocabulary.  Sequences drawn from it have *low conditional entropy*, so a
  transformer trained on them develops the peaked next-token distributions
  that make speculation informative (a flat untrained model accepts almost
  nothing — the same reason the paper uses trained model pairs).
"""

from __future__ import annotations

from typing import List

import numpy as np


class ZipfCorpus:
    """I.i.d. Zipf token sequences."""

    def __init__(self, vocab_size: int, exponent: float = 1.2, seed: int = 0,
                 reserved_low: int = 1):
        if vocab_size - reserved_low < 2:
            raise ValueError("vocabulary too small")
        self.vocab_size = vocab_size
        self.reserved_low = reserved_low
        self._rng = np.random.default_rng(seed)
        ranks = np.arange(1, vocab_size - reserved_low + 1, dtype=np.float64)
        weights = ranks ** (-exponent)
        self._probs = weights / weights.sum()

    def sample(self, length: int) -> np.ndarray:
        """One sequence of ``length`` tokens."""
        return self._rng.choice(
            np.arange(self.reserved_low, self.vocab_size),
            size=length, p=self._probs,
        ).astype(np.intp)

    def sample_many(self, n: int, length: int) -> List[np.ndarray]:
        return [self.sample(length) for _ in range(n)]


class MarkovCorpus:
    """Sequences from a sparse random first-order Markov chain.

    Each token has ``branching`` plausible successors with Zipf-decaying
    probabilities, giving a per-step conditional entropy of roughly
    ``log(branching)`` nats — low enough that a small trained transformer
    predicts the chain well, which is what gives the SSM/LLM pair realistic
    (Table 1-like) agreement statistics.
    """

    def __init__(
        self,
        vocab_size: int,
        branching: int = 4,
        exponent: float = 1.0,
        seed: int = 0,
        reserved_low: int = 1,
    ):
        if branching < 1:
            raise ValueError("branching must be >= 1")
        usable = vocab_size - reserved_low
        if usable < branching + 1:
            raise ValueError("vocabulary too small for requested branching")
        self.vocab_size = vocab_size
        self.reserved_low = reserved_low
        self.branching = branching
        self._rng = np.random.default_rng(seed)
        ranks = np.arange(1, branching + 1, dtype=np.float64)
        weights = ranks ** (-exponent)
        self._succ_probs = weights / weights.sum()
        # successors[t] lists the plausible next tokens after token t.
        self.successors = np.empty((usable, branching), dtype=np.intp)
        for t in range(usable):
            self.successors[t] = (
                self._rng.choice(usable, size=branching, replace=False)
                + reserved_low
            )

    def sample(self, length: int, rng: np.random.Generator = None) -> np.ndarray:
        """One sequence of ``length`` tokens following the chain.

        Args:
            length: Sequence length.
            rng: Optional external generator (for call-order-independent
                reproducibility); defaults to the corpus's own stream.
        """
        rng = rng if rng is not None else self._rng
        usable = self.vocab_size - self.reserved_low
        seq = np.empty(length, dtype=np.intp)
        seq[0] = rng.integers(usable) + self.reserved_low
        for i in range(1, length):
            prev = seq[i - 1] - self.reserved_low
            seq[i] = rng.choice(self.successors[prev], p=self._succ_probs)
        return seq

    def sample_many(self, n: int, length: int) -> List[np.ndarray]:
        return [self.sample(length) for _ in range(n)]

    def conditional_entropy(self) -> float:
        """Exact per-step conditional entropy of the chain, in nats."""
        p = self._succ_probs
        return float(-(p * np.log(p)).sum())
