"""Request manager: iteration-level scheduling with continuous batching.

Adapted from Orca's iteration-level scheduling (paper section 5.1): the
manager schedules *iterations*, not requests.  Each iteration it (1) admits
waiting requests into free batch slots, (2) advances every running session
by one LLM decoding iteration, and (3) retires finished requests — so new
requests start without waiting for the current batch to drain, and finished
requests stop consuming slots immediately.

One manager serves every execution mode, parameterized by verification
backend:

* ``backend=None`` (default): per-request serving — each session advances
  through its own single-lane pipeline (one verification pass per request).
* ``backend=FusedBackend(...)``: fused serving — every running session's
  token tree is verified in one batched pass per iteration (Figure 6's
  workflow); :class:`~repro.serving.batched_manager.BatchedRequestManager`
  is the compatibility shim that configures this.
* ``backend=PerRequestBackend(model, rng=...)``: the per-request execution
  strategy under the fused scheduling discipline — used by the parity
  suites to show all backends emit identical tokens.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional, Sequence, Tuple

import numpy as np

from repro.engine.generation import GenerationConfig
from repro.engine.pipeline import DecodePipeline, VerificationBackend
from repro.obs import DEFAULT_COUNT_BUCKETS, REGISTRY, TRACER
from repro.serving.request import Request, RequestOutput, RequestState
from repro.serving.session import DecodeSession, SpeculativeSession

_ITERATIONS = REGISTRY.counter(
    "repro.serving.iterations", help="scheduler iterations executed")
_ADMITTED = REGISTRY.counter(
    "repro.serving.admitted", help="requests admitted into batch slots")
_RETIRED = REGISTRY.counter(
    "repro.serving.retired", help="requests retired (finished) by the manager")
_TOKENS = REGISTRY.counter(
    "repro.serving.tokens_emitted", help="tokens emitted across all batches")
_SCORED = REGISTRY.counter(
    "repro.serving.llm_tokens_scored", help="token positions scored by the LLM")
_RUNNING = REGISTRY.gauge(
    "repro.serving.running", help="requests currently holding batch slots")
_WAITING = REGISTRY.gauge(
    "repro.serving.waiting", help="requests queued for admission")
_OCCUPANCY = REGISTRY.histogram(
    "repro.serving.batch_occupancy", buckets=DEFAULT_COUNT_BUCKETS,
    help="sessions advanced per non-idle scheduler iteration")


@dataclass
class IterationStats:
    """What one scheduler iteration did (consumed by the cost model).

    Attributes:
        iteration: Iteration index.
        batch_size: Sessions advanced this iteration — every running
            session the scheduler processed, *including* sessions that
            finished or were retired (context exhausted) during the
            iteration.  Identical across per-request and fused serving for
            the same workload.
        tokens_emitted: Tokens emitted across the batch.
        llm_tokens_scored: Token positions scored across the batch.
        admitted: Requests admitted this iteration.
        finished: Requests retired this iteration.
    """

    iteration: int
    batch_size: int
    tokens_emitted: int
    llm_tokens_scored: int
    admitted: int
    finished: int


@dataclass
class _Tracked:
    request: Request
    session: Optional[DecodeSession] = None
    output: Optional[RequestOutput] = None


class RequestManager:
    """Continuous-batching scheduler over per-request decode sessions.

    Args:
        session_factory: Builds a :class:`DecodeSession` for a request —
            this is where incremental vs speculative serving is chosen.
        max_batch_size: Maximum concurrently running requests.
        policy: Admission-ordering policy over the waiting queue
            (default FCFS; see :mod:`repro.serving.policies`).
        memory_pool: Optional :class:`~repro.serving.memory.KvMemoryPool`.
            When set, a request is only admitted if its worst-case KV
            footprint (prompt + generation budget + ``kv_headroom``) fits;
            requests that do not fit are skipped this iteration (no
            head-of-line blocking) and retried once memory frees up.
        kv_headroom: Extra KV tokens reserved per request for transient
            tree-verification rows (section 5.3's memory overhead).
        backend: Optional :class:`VerificationBackend`.  ``None`` steps each
            session through its own pipeline; a backend verifies the whole
            batch per iteration through one shared pipeline (and requires
            :class:`SpeculativeSession` sessions).
    """

    def __init__(
        self,
        session_factory: Callable[[Request], DecodeSession],
        max_batch_size: int = 8,
        policy: Optional[Callable] = None,
        memory_pool: Optional["KvMemoryPool"] = None,
        kv_headroom: int = 0,
        backend: Optional[VerificationBackend] = None,
    ):
        if max_batch_size < 1:
            raise ValueError("max_batch_size must be >= 1")
        if kv_headroom < 0:
            raise ValueError("kv_headroom must be >= 0")
        from repro.serving.policies import fcfs

        self.session_factory = session_factory
        self.max_batch_size = max_batch_size
        self.policy = policy or fcfs
        self.memory_pool = memory_pool
        self.kv_headroom = kv_headroom
        self.backend = backend
        self._pipeline = (
            DecodePipeline(backend.model, backend)
            if backend is not None else None
        )
        self.iteration = 0
        self.iteration_stats: List[IterationStats] = []
        self._next_id = 0
        self._tracked: Dict[int, _Tracked] = {}
        self._waiting: List[int] = []
        self._running: List[int] = []

    # -- submission ------------------------------------------------------------

    def submit(
        self,
        prompt: Sequence[int],
        config: Optional[GenerationConfig] = None,
    ) -> int:
        """Enqueue a request; returns its id."""
        request = Request(
            request_id=self._next_id,
            prompt=np.asarray(list(prompt), dtype=np.intp),
            config=config or GenerationConfig(),
            arrival_iteration=self.iteration,
        )
        self._next_id += 1
        self._tracked[request.request_id] = _Tracked(request=request)
        self._waiting.append(request.request_id)
        return request.request_id

    # -- scheduling ---------------------------------------------------------------

    @property
    def num_waiting(self) -> int:
        return len(self._waiting)

    @property
    def num_running(self) -> int:
        return len(self._running)

    @property
    def has_work(self) -> bool:
        return bool(self._waiting or self._running)

    def run_iteration(self) -> IterationStats:
        """One scheduler iteration: admit, advance, retire."""
        with TRACER.span("repro.serving.iteration",
                         iteration=self.iteration) as span:
            admitted = self._admit()
            batch_size = len(self._running)
            if self.backend is None:
                tokens_emitted, llm_tokens, finished_ids = self._advance_each()
            else:
                tokens_emitted, llm_tokens, finished_ids = self._advance_fused()
            for request_id in finished_ids:
                self._retire(request_id)
            stats = IterationStats(
                iteration=self.iteration,
                batch_size=batch_size,
                tokens_emitted=tokens_emitted,
                llm_tokens_scored=llm_tokens,
                admitted=admitted,
                finished=len(finished_ids),
            )
            span.set(batch=batch_size, admitted=admitted,
                     finished=len(finished_ids),
                     tokens_emitted=tokens_emitted)
        _ITERATIONS.inc()
        _TOKENS.inc(tokens_emitted)
        _SCORED.inc(llm_tokens)
        _RUNNING.set(len(self._running))
        _WAITING.set(len(self._waiting))
        if batch_size:
            _OCCUPANCY.observe(batch_size)
        self.iteration_stats.append(stats)
        self.iteration += 1
        return stats

    def _advance_each(self) -> Tuple[int, int, List[int]]:
        """Per-request serving: each session steps through its own pipeline."""
        tokens_emitted = 0
        llm_tokens = 0
        finished_ids: List[int] = []
        for request_id in self._running:
            tracked = self._tracked[request_id]
            session = tracked.session
            steps_before = len(session.steps)
            emitted = session.step()
            tokens_emitted += len(emitted)
            if len(session.steps) > steps_before:
                # Only count steps that actually ran: a retiring session
                # emits nothing and records no trace, and re-reading the
                # previous trace would double-count its scored tokens.
                llm_tokens += session.steps[-1].llm_tokens_scored
            self._note_emission(tracked, emitted)
            if session.finished:
                finished_ids.append(request_id)
        return tokens_emitted, llm_tokens, finished_ids

    def _advance_fused(self) -> Tuple[int, int, List[int]]:
        """Batched serving: one pipeline tick verifies every session's tree
        through the shared backend."""
        sessions: List[DecodeSession] = []
        for request_id in self._running:
            session = self._tracked[request_id].session
            if not isinstance(session, SpeculativeSession):
                raise TypeError(
                    "batched verification requires SpeculativeSession "
                    f"sessions; got {type(session).__name__}"
                )
            sessions.append(session)
        outcomes = self._pipeline.tick([s.state for s in sessions])
        tokens_emitted = 0
        llm_tokens = 0
        finished_ids: List[int] = []
        for request_id, session, outcome in zip(
            list(self._running), sessions, outcomes
        ):
            tokens_emitted += len(outcome.emitted)
            if outcome.advanced:
                llm_tokens += session.steps[-1].llm_tokens_scored
            self._note_emission(self._tracked[request_id], outcome.emitted)
            if session.finished:
                finished_ids.append(request_id)
        return tokens_emitted, llm_tokens, finished_ids

    def _note_emission(self, tracked: _Tracked, emitted: List[int]) -> None:
        if emitted and tracked.output.first_token_iteration is None:
            tracked.output.first_token_iteration = self.iteration

    def run_until_complete(self, max_iterations: int = 100000) -> List[RequestOutput]:
        """Drain the queue; returns finished outputs in completion order."""
        start = self.iteration
        while self.has_work:
            if self.iteration - start >= max_iterations:
                raise RuntimeError(
                    f"exceeded {max_iterations} iterations without draining"
                )
            self.run_iteration()
            if self._waiting and not self._running:
                stuck = [
                    rid for rid in self._waiting
                    if not self._try_fits_alone(rid)
                ]
                if stuck:
                    raise MemoryError(
                        f"requests {stuck} can never fit in the KV memory "
                        f"pool even with an empty batch"
                    )
        return self.finished_outputs()

    def _try_fits_alone(self, request_id: int) -> bool:
        """Could this request be admitted into an otherwise empty pool?"""
        if self.memory_pool is None:
            return True
        request = self._tracked[request_id].request
        tokens = (
            len(request.prompt)
            + request.config.max_new_tokens
            + self.kv_headroom
        )
        return self.memory_pool.tokens_to_bytes(tokens) <= \
            self.memory_pool.budget_bytes

    def finished_outputs(self) -> List[RequestOutput]:
        """Outputs of all finished requests, ordered by finish iteration."""
        outputs = [
            t.output
            for t in self._tracked.values()
            if t.request.state is RequestState.FINISHED
        ]
        return sorted(outputs, key=lambda o: (o.finish_iteration, o.request_id))

    def output_for(self, request_id: int) -> RequestOutput:
        """The output of one finished request."""
        tracked = self._tracked.get(request_id)
        if tracked is None:
            raise KeyError(f"unknown request id {request_id}")
        if tracked.request.state is not RequestState.FINISHED:
            raise ValueError(f"request {request_id} has not finished")
        return tracked.output

    # -- internals -----------------------------------------------------------------

    def _admit(self) -> int:
        admitted = 0
        ordered = self.policy(
            [self._tracked[rid].request for rid in self._waiting]
        )
        for request in ordered:
            if len(self._running) >= self.max_batch_size:
                break
            if not self._try_reserve(request):
                continue  # does not fit in KV memory right now; skip ahead
            request_id = request.request_id
            self._waiting.remove(request_id)
            tracked = self._tracked[request_id]
            tracked.session = self.session_factory(tracked.request)
            tracked.output = RequestOutput(request_id=request_id)
            tracked.request.state = RequestState.RUNNING
            self._running.append(request_id)
            admitted += 1
            _ADMITTED.inc()
            TRACER.event(
                "repro.serving.admit",
                request=request_id,
                iteration=self.iteration,
                queued=self.iteration - tracked.request.arrival_iteration,
                prompt_len=len(tracked.request.prompt),
            )
        return admitted

    def _try_reserve(self, request: Request) -> bool:
        if self.memory_pool is None:
            return True
        tokens = (
            len(request.prompt)
            + request.config.max_new_tokens
            + self.kv_headroom
        )
        if not self.memory_pool.can_admit(tokens):
            return False
        self.memory_pool.reserve(request.request_id, tokens)
        return True

    def _retire(self, request_id: int) -> None:
        if self.memory_pool is not None:
            self.memory_pool.release(request_id)
        tracked = self._tracked[request_id]
        session = tracked.session
        output = tracked.output
        output.tokens = list(session.tokens)
        output.finished_by_eos = session.finished_by_eos
        output.finish_iteration = self.iteration
        output.num_llm_steps = len(session.steps)
        tracked.request.state = RequestState.FINISHED
        _RETIRED.inc()
        TRACER.event(
            "repro.serving.retire",
            request=request_id,
            iteration=self.iteration,
            tokens=len(output.tokens),
            llm_steps=output.num_llm_steps,
            finished_by_eos=output.finished_by_eos,
        )
        release = getattr(session, "release", None)
        if callable(release):
            release()  # paged caches return their blocks to the pool
        tracked.session = None  # free the KV cache
        self._running.remove(request_id)
