"""Request manager: iteration-level scheduling with continuous batching.

Adapted from Orca's iteration-level scheduling (paper section 5.1): the
manager schedules *iterations*, not requests.  Each iteration it (1) admits
waiting requests into free batch slots, (2) advances every running session
by one LLM decoding iteration, and (3) retires finished requests — so new
requests start without waiting for the current batch to drain, and finished
requests stop consuming slots immediately.

One manager serves every execution mode, parameterized by verification
backend:

* ``backend=None`` (default): per-request serving — each session advances
  through its own single-lane pipeline (one verification pass per request).
* ``backend=FusedBackend(...)``: fused serving — every running session's
  token tree is verified in one batched pass per iteration (Figure 6's
  workflow); :class:`~repro.serving.batched_manager.BatchedRequestManager`
  is the compatibility shim that configures this.
* ``backend=PerRequestBackend(model, rng=...)``: the per-request execution
  strategy under the fused scheduling discipline — used by the parity
  suites to show all backends emit identical tokens.

Failure is a first-class code path (see ``docs/fault_tolerance.md``).  With
a :class:`~repro.faults.FaultInjector` attached the manager survives every
injected failure mode: transient session faults are absorbed by **bounded
retry with backoff-in-iterations** (then the terminal
:class:`RequestState.FAILED` so one poisoned request cannot stall the
batch), KV-pressure spikes trigger **preempt-and-requeue** (victim chosen
by a :data:`~repro.serving.policies.PreemptionPolicy`, KV reservation
released, session dropped, request recomputes from its committed tokens on
re-admission), and speculation/verification faults degrade the decode
pipeline to incremental decoding.  Under greedy verification all of these
paths emit bit-identical final tokens to a fault-free run.
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace
from typing import Callable, Dict, List, Optional, Sequence, Tuple

import numpy as np

from repro.engine.generation import GenerationConfig
from repro.engine.pipeline import DecodePipeline, VerificationBackend
from repro.faults import FaultError, FaultInjector, FaultKind
from repro.obs import DEFAULT_COUNT_BUCKETS, REGISTRY, TRACER
from repro.serving.request import Request, RequestOutput, RequestState
from repro.serving.session import DecodeSession, SpeculativeSession

_ITERATIONS = REGISTRY.counter(
    "repro.serving.iterations", help="scheduler iterations executed")
_ADMITTED = REGISTRY.counter(
    "repro.serving.admitted", help="requests admitted into batch slots")
_RETIRED = REGISTRY.counter(
    "repro.serving.retired", help="requests retired (finished) by the manager")
_TOKENS = REGISTRY.counter(
    "repro.serving.tokens_emitted", help="tokens emitted across all batches")
_SCORED = REGISTRY.counter(
    "repro.serving.llm_tokens_scored", help="token positions scored by the LLM")
_RUNNING = REGISTRY.gauge(
    "repro.serving.running", help="requests currently holding batch slots")
_WAITING = REGISTRY.gauge(
    "repro.serving.waiting", help="requests queued for admission")
_OCCUPANCY = REGISTRY.histogram(
    "repro.serving.batch_occupancy", buckets=DEFAULT_COUNT_BUCKETS,
    help="sessions advanced per non-idle scheduler iteration")
_PREEMPTIONS = REGISTRY.counter(
    "repro.serving.preemptions",
    help="requests preempted and requeued (KV pressure or explicit)")
_RETRIES = REGISTRY.counter(
    "repro.serving.retries",
    help="transient session faults absorbed by bounded retry")
_FAILED = REGISTRY.counter(
    "repro.serving.failed",
    help="requests terminally failed after exhausting retries")


@dataclass
class IterationStats:
    """What one scheduler iteration did (consumed by the cost model).

    Attributes:
        iteration: Iteration index.
        batch_size: Sessions holding batch slots this iteration — every
            running session the scheduler processed, *including* sessions
            that finished or were retired (context exhausted) during the
            iteration and sessions skipped while backing off after a
            transient fault.  Identical across per-request and fused
            serving for the same workload.
        tokens_emitted: Tokens emitted across the batch.
        llm_tokens_scored: Token positions scored across the batch.
        admitted: Requests admitted this iteration.
        finished: Requests retired this iteration.
        emissions: Per-request committed-token deltas this iteration —
            ``{request_id: [token, ...]}`` for every request that emitted.
            This is what the streaming gateway forwards to clients, so
            consumers never re-diff session state.
        finished_ids: Requests retired (FINISHED) this iteration.
        preempted_ids: Requests preempted and requeued this iteration.
        failed_ids: Requests terminally FAILED this iteration.
    """

    iteration: int
    batch_size: int
    tokens_emitted: int
    llm_tokens_scored: int
    admitted: int
    finished: int
    emissions: Dict[int, List[int]] = field(default_factory=dict)
    finished_ids: List[int] = field(default_factory=list)
    preempted_ids: List[int] = field(default_factory=list)
    failed_ids: List[int] = field(default_factory=list)


@dataclass
class _Tracked:
    request: Request
    session: Optional[DecodeSession] = None
    output: Optional[RequestOutput] = None
    #: Tokens committed by earlier session incarnations (preemption saves
    #: them here; re-admission recomputes from prompt + committed).
    committed: List[int] = field(default_factory=list)
    #: LLM steps consumed by earlier incarnations.
    llm_steps_prior: int = 0
    #: Consecutive transient session faults (reset on successful advance).
    retry_streak: int = 0
    #: Total transient session faults absorbed over the lifetime.
    total_retries: int = 0
    #: Times this request was preempted and requeued.
    preemptions: int = 0
    #: The request does not advance (or re-admit) before this iteration —
    #: backoff-in-iterations after a transient fault.
    cooldown_until: int = 0


class RequestManager:
    """Continuous-batching scheduler over per-request decode sessions.

    Args:
        session_factory: Builds a :class:`DecodeSession` for a request —
            this is where incremental vs speculative serving is chosen.
            After a preemption the factory receives the *resume view* of
            the request: prompt extended by the committed tokens, token
            budget reduced accordingly.
        max_batch_size: Maximum concurrently running requests.
        policy: Admission-ordering policy over the waiting queue
            (default FCFS; see :mod:`repro.serving.policies`).
        memory_pool: Optional :class:`~repro.serving.memory.KvMemoryPool`.
            When set, a request is only admitted if its worst-case KV
            footprint (prompt + generation budget + ``kv_headroom``) fits;
            requests that do not fit are skipped this iteration (no
            head-of-line blocking) and retried once memory frees up.
        kv_headroom: Extra KV tokens reserved per request for transient
            tree-verification rows (section 5.3's memory overhead).
        backend: Optional :class:`VerificationBackend`.  ``None`` steps each
            session through its own pipeline; a backend verifies the whole
            batch per iteration through one shared pipeline (and requires
            :class:`SpeculativeSession` sessions).
        injector: Optional :class:`~repro.faults.FaultInjector` driving the
            failure paths (chaos testing); ``None`` disables injection at
            zero cost.
        preemption_policy: Victim ordering for KV-pressure preemption
            (default :func:`~repro.serving.policies.preempt_newest_first`).
        max_session_retries: Consecutive transient session faults tolerated
            per request before it is marked ``FAILED``.
        fallback_cooldown: Clean pipeline ticks before speculation re-enables
            after a speculation/verification fault (forwarded to
            :class:`DecodePipeline`).
        planner: Optional :class:`~repro.speculate.planner.TreePlanner`
            forwarded to the shared :class:`DecodePipeline` — per-tick
            hardware-aware speculation budgets.  Requires a fused
            ``backend`` (per-request serving runs one pipeline per session,
            so there is no batch-wide tick to plan).
        router: Optional :class:`~repro.speculate.router.SpeculatorRouter`
            closing the routing feedback loop: each admitted session's
            pipeline (the shared one under a fused ``backend``, otherwise
            the session's own, armed at admission) reports per-request
            acceptance back after every verify.  Pair it with a routed
            session factory (:func:`~repro.serving.session.make_routed_factory`)
            so assignments are pinned at admit; preempted requests re-route
            sticky through the same factory.
    """

    def __init__(
        self,
        session_factory: Callable[[Request], DecodeSession],
        max_batch_size: int = 8,
        policy: Optional[Callable] = None,
        memory_pool: Optional["KvMemoryPool"] = None,
        kv_headroom: int = 0,
        backend: Optional[VerificationBackend] = None,
        injector: Optional[FaultInjector] = None,
        preemption_policy: Optional[Callable] = None,
        max_session_retries: int = 3,
        fallback_cooldown: int = 3,
        planner: Optional["TreePlanner"] = None,
        router: Optional["SpeculatorRouter"] = None,
    ):
        if max_batch_size < 1:
            raise ValueError("max_batch_size must be >= 1")
        if kv_headroom < 0:
            raise ValueError("kv_headroom must be >= 0")
        if planner is not None and backend is None:
            raise ValueError(
                "planner requires a fused backend (shared pipeline)"
            )
        if max_session_retries < 0:
            raise ValueError("max_session_retries must be >= 0")
        from repro.serving.policies import fcfs, preempt_newest_first

        self.session_factory = session_factory
        self.max_batch_size = max_batch_size
        self.policy = policy or fcfs
        self.memory_pool = memory_pool
        self.kv_headroom = kv_headroom
        self.backend = backend
        self.injector = injector
        self.preemption_policy = preemption_policy or preempt_newest_first
        self.max_session_retries = max_session_retries
        self.fallback_cooldown = fallback_cooldown
        self.planner = planner
        self.router = router
        self._pipeline = (
            DecodePipeline(backend.model, backend, injector=injector,
                           fallback_cooldown=fallback_cooldown,
                           planner=planner, router=router)
            if backend is not None else None
        )
        self.iteration = 0
        self.iteration_stats: List[IterationStats] = []
        self._next_id = 0
        self._tracked: Dict[int, _Tracked] = {}
        self._waiting: List[int] = []
        self._running: List[int] = []
        #: Lifecycle events since the last recorded iteration; drained into
        #: the next :class:`IterationStats` (preempt/fail may also be
        #: triggered between iterations by an external driver).
        self._preempted_events: List[int] = []
        self._failed_events: List[int] = []

    # -- submission ------------------------------------------------------------

    def submit(
        self,
        prompt: Sequence[int],
        config: Optional[GenerationConfig] = None,
    ) -> int:
        """Enqueue a request; returns its id."""
        request = Request(
            request_id=self._next_id,
            prompt=np.asarray(list(prompt), dtype=np.intp),
            config=config or GenerationConfig(),
            arrival_iteration=self.iteration,
        )
        self._next_id += 1
        self._tracked[request.request_id] = _Tracked(request=request)
        self._waiting.append(request.request_id)
        return request.request_id

    # -- scheduling ---------------------------------------------------------------

    @property
    def num_waiting(self) -> int:
        return len(self._waiting)

    @property
    def num_running(self) -> int:
        return len(self._running)

    @property
    def has_work(self) -> bool:
        return bool(self._waiting or self._running)

    @property
    def free_slots(self) -> int:
        """Batch slots currently unoccupied (admission headroom)."""
        return self.max_batch_size - len(self._running)

    def can_reserve(self, prompt_len: int, max_new_tokens: int) -> bool:
        """Would a request of this shape pass the KV admission check now?

        The gateway's admission control asks this *before* submitting, so
        requests that cannot hold a KV reservation stay in the gateway's
        own queues instead of piling up in the manager.
        """
        if self.memory_pool is None:
            return True
        tokens = prompt_len + max_new_tokens + self.kv_headroom
        return self.memory_pool.can_admit(tokens)

    def run_iteration(self, only: Optional[Sequence[int]] = None
                      ) -> IterationStats:
        """One scheduler iteration: admit, advance, retire.

        Args:
            only: Optional subset of running request ids to advance this
                iteration (SLO-class scheduling); other running requests
                keep their slots and reservations but do not decode.
        """
        with TRACER.span("repro.serving.iteration",
                         iteration=self.iteration) as span:
            admitted = self._admit()
            stats = self._advance_and_retire(admitted, only, span)
        self._record_iteration(stats)
        return stats

    def admit(self) -> int:
        """Admission phase alone (sync-core surface): fill free batch
        slots from the waiting queue; returns the number admitted."""
        return self._admit()

    def step(self, only: Optional[Sequence[int]] = None) -> IterationStats:
        """Advance + retire without admission (sync-core surface).

        The async gateway drives the manager through :meth:`admit` /
        :meth:`step` so admission policy lives outside the core; the
        replay path keeps using :meth:`run_iteration`.
        """
        with TRACER.span("repro.serving.iteration",
                         iteration=self.iteration) as span:
            stats = self._advance_and_retire(0, only, span)
        self._record_iteration(stats)
        return stats

    def _advance_and_retire(self, admitted: int,
                            only: Optional[Sequence[int]],
                            span) -> IterationStats:
        """The advance/retire body shared by :meth:`run_iteration` and
        :meth:`step` (runs inside the iteration trace span)."""
        if self.injector is not None:
            self._apply_kv_pressure()
        batch_size = len(self._running)
        if self.backend is None:
            tokens_emitted, llm_tokens, finished_ids, emissions = \
                self._advance_each(only)
        else:
            tokens_emitted, llm_tokens, finished_ids, emissions = \
                self._advance_fused(only)
        for request_id in finished_ids:
            self._retire(request_id)
        stats = IterationStats(
            iteration=self.iteration,
            batch_size=batch_size,
            tokens_emitted=tokens_emitted,
            llm_tokens_scored=llm_tokens,
            admitted=admitted,
            finished=len(finished_ids),
            emissions=emissions,
            finished_ids=finished_ids,
            preempted_ids=self._preempted_events,
            failed_ids=self._failed_events,
        )
        self._preempted_events = []
        self._failed_events = []
        span.set(batch=batch_size, admitted=admitted,
                 finished=len(finished_ids),
                 tokens_emitted=tokens_emitted)
        return stats

    def _record_iteration(self, stats: IterationStats) -> None:
        """Metrics + the iteration log, then advance the logical clock."""
        _ITERATIONS.inc()
        _TOKENS.inc(stats.tokens_emitted)
        _SCORED.inc(stats.llm_tokens_scored)
        _RUNNING.set(len(self._running))
        _WAITING.set(len(self._waiting))
        if stats.batch_size:
            _OCCUPANCY.observe(stats.batch_size)
        self.iteration_stats.append(stats)
        self.iteration += 1

    def _schedulable(self, only: Optional[Sequence[int]] = None) -> List[int]:
        """Running requests that advance this iteration.

        Applies the failure paths before any session touches the model:
        requests backing off after a transient fault are skipped (they keep
        their slot and reservation), and injected session faults are
        absorbed here — bounded retry with exponential
        backoff-in-iterations, then terminal ``FAILED``.  With ``only``
        set, requests outside the subset are skipped without consuming
        fault-injection draws (they simply do not decode this iteration).
        """
        subset = set(only) if only is not None else None
        ready: List[int] = []
        for request_id in list(self._running):
            if subset is not None and request_id not in subset:
                continue
            tracked = self._tracked[request_id]
            if tracked.cooldown_until > self.iteration:
                continue
            if self.injector is not None and self.injector.should_fire(
                FaultKind.SESSION, request=request_id,
                iteration=self.iteration,
            ):
                self._note_session_fault(request_id)
                continue
            ready.append(request_id)
        return ready

    def _advance_each(
        self, only: Optional[Sequence[int]] = None,
    ) -> Tuple[int, int, List[int], Dict[int, List[int]]]:
        """Per-request serving: each session steps through its own pipeline."""
        tokens_emitted = 0
        llm_tokens = 0
        finished_ids: List[int] = []
        emissions: Dict[int, List[int]] = {}
        for request_id in self._schedulable(only):
            tracked = self._tracked[request_id]
            session = tracked.session
            steps_before = len(session.steps)
            emitted = session.step()
            tracked.retry_streak = 0
            tokens_emitted += len(emitted)
            if len(session.steps) > steps_before:
                # Only count steps that actually ran: a retiring session
                # emits nothing and records no trace, and re-reading the
                # previous trace would double-count its scored tokens.
                llm_tokens += session.steps[-1].llm_tokens_scored
            if emitted:
                emissions[request_id] = list(emitted)
            self._note_emission(tracked, emitted)
            if session.finished:
                finished_ids.append(request_id)
        return tokens_emitted, llm_tokens, finished_ids, emissions

    def _advance_fused(
        self, only: Optional[Sequence[int]] = None,
    ) -> Tuple[int, int, List[int], Dict[int, List[int]]]:
        """Batched serving: one pipeline tick verifies every session's tree
        through the shared backend."""
        scheduled = self._schedulable(only)
        sessions: List[DecodeSession] = []
        for request_id in scheduled:
            session = self._tracked[request_id].session
            if not isinstance(session, SpeculativeSession):
                raise TypeError(
                    "batched verification requires SpeculativeSession "
                    f"sessions; got {type(session).__name__}"
                )
            sessions.append(session)
        outcomes = self._pipeline.tick([s.state for s in sessions])
        tokens_emitted = 0
        llm_tokens = 0
        finished_ids: List[int] = []
        emissions: Dict[int, List[int]] = {}
        for request_id, session, outcome in zip(scheduled, sessions, outcomes):
            self._tracked[request_id].retry_streak = 0
            tokens_emitted += len(outcome.emitted)
            if outcome.advanced:
                llm_tokens += session.steps[-1].llm_tokens_scored
            if outcome.emitted:
                emissions[request_id] = list(outcome.emitted)
            self._note_emission(self._tracked[request_id], outcome.emitted)
            if session.finished:
                finished_ids.append(request_id)
        return tokens_emitted, llm_tokens, finished_ids, emissions

    def _note_emission(self, tracked: _Tracked, emitted: List[int]) -> None:
        if emitted and tracked.output.first_token_iteration is None:
            tracked.output.first_token_iteration = self.iteration

    def run_until_complete(self, max_iterations: int = 100000) -> List[RequestOutput]:
        """Drain the queue; returns finished outputs in completion order.

        FAILED requests leave the queue terminally and do not appear in the
        returned outputs (see :meth:`failed_outputs`).
        """
        start = self.iteration
        while self.has_work:
            if self.iteration - start >= max_iterations:
                raise RuntimeError(
                    f"exceeded {max_iterations} iterations without draining"
                )
            self.run_iteration()
            if self._waiting and not self._running:
                stuck = [
                    rid for rid in self._waiting
                    if not self._try_fits_alone(rid)
                ]
                if stuck:
                    raise MemoryError(
                        f"requests {stuck} can never fit in the KV memory "
                        f"pool even with an empty batch"
                    )
        return self.finished_outputs()

    def _try_fits_alone(self, request_id: int) -> bool:
        """Could this request be admitted into an otherwise empty pool?"""
        if self.memory_pool is None:
            return True
        request = self._tracked[request_id].request
        tokens = (
            len(request.prompt)
            + request.config.max_new_tokens
            + self.kv_headroom
        )
        return self.memory_pool.tokens_to_bytes(tokens) <= \
            self.memory_pool.budget_bytes

    def finished_outputs(self) -> List[RequestOutput]:
        """Outputs of all finished requests, ordered by finish iteration."""
        outputs = [
            t.output
            for t in self._tracked.values()
            if t.request.state is RequestState.FINISHED
        ]
        return sorted(outputs, key=lambda o: (o.finish_iteration, o.request_id))

    def failed_outputs(self) -> List[RequestOutput]:
        """Partial outputs of terminally FAILED requests (failure order)."""
        outputs = [
            t.output
            for t in self._tracked.values()
            if t.request.state is RequestState.FAILED
        ]
        return sorted(outputs, key=lambda o: (o.finish_iteration, o.request_id))

    def output_for(self, request_id: int) -> RequestOutput:
        """The output of one finished (or failed) request."""
        tracked = self._tracked.get(request_id)
        if tracked is None:
            raise KeyError(f"unknown request id {request_id}")
        if tracked.request.state not in (RequestState.FINISHED,
                                         RequestState.FAILED):
            raise ValueError(f"request {request_id} has not finished")
        return tracked.output

    # -- preemption / failure ----------------------------------------------------

    def preempt(self, request_id: int) -> None:
        """Preempt a RUNNING request: requeue it and free its resources.

        The session (and its KV cache) is dropped, the KV reservation is
        released, and the request re-enters the waiting queue with its
        committed tokens saved; on re-admission a fresh session recomputes
        from ``prompt + committed``, so under greedy verification the final
        output is bit-identical to an unpreempted run.
        """
        tracked = self._tracked.get(request_id)
        if tracked is None:
            raise KeyError(f"unknown request id {request_id}")
        if tracked.request.state is not RequestState.RUNNING:
            raise ValueError(f"request {request_id} is not running")
        session = tracked.session
        tracked.committed.extend(int(t) for t in session.tokens)
        tracked.llm_steps_prior += len(session.steps)
        tracked.preemptions += 1
        self._drop_session(request_id)
        tracked.request.state = RequestState.WAITING
        self._waiting.append(request_id)
        self._preempted_events.append(request_id)
        _PREEMPTIONS.inc()
        TRACER.event(
            "repro.serving.preempt",
            request=request_id,
            iteration=self.iteration,
            committed=len(tracked.committed),
            preemptions=tracked.preemptions,
        )

    def _apply_kv_pressure(self) -> None:
        """Preempt one victim when an injected KV-pressure spike fires."""
        if not self._running:
            return
        if not self.injector.should_fire(FaultKind.KV_PRESSURE,
                                         iteration=self.iteration):
            return
        victims = self.preemption_policy(
            [self._tracked[rid].request for rid in self._running]
        )
        if victims:
            self.preempt(victims[0].request_id)

    def _note_session_fault(self, request_id: int) -> None:
        """Bounded retry: back off in iterations, then terminally fail."""
        tracked = self._tracked[request_id]
        tracked.retry_streak += 1
        tracked.total_retries += 1
        _RETRIES.inc()
        if tracked.retry_streak > self.max_session_retries:
            self._fail(request_id, "transient session faults exceeded "
                       f"{self.max_session_retries} consecutive retries")
            return
        backoff = 2 ** (tracked.retry_streak - 1)
        tracked.cooldown_until = self.iteration + backoff
        TRACER.event(
            "repro.serving.retry",
            request=request_id,
            iteration=self.iteration,
            attempt=tracked.retry_streak,
            backoff_iterations=backoff,
        )

    def _fail(self, request_id: int, reason: str) -> None:
        """Terminal failure: release every resource, keep partial output."""
        tracked = self._tracked[request_id]
        if tracked.output is None:
            tracked.output = RequestOutput(request_id=request_id)
        session = tracked.session
        output = tracked.output
        output.tokens = tracked.committed + (
            [int(t) for t in session.tokens] if session is not None else []
        )
        output.finish_iteration = self.iteration
        output.num_llm_steps = tracked.llm_steps_prior + (
            len(session.steps) if session is not None else 0
        )
        output.preemptions = tracked.preemptions
        output.retries = tracked.total_retries
        output.error = reason
        tracked.request.state = RequestState.FAILED
        if request_id in self._running:
            self._drop_session(request_id)
        elif request_id in self._waiting:
            self._waiting.remove(request_id)
        self._failed_events.append(request_id)
        _FAILED.inc()
        TRACER.event(
            "repro.serving.fail",
            request=request_id,
            iteration=self.iteration,
            tokens=len(output.tokens),
            reason=reason,
        )

    def _drop_session(self, request_id: int) -> None:
        """Free a running request's slot, session cache, and reservation."""
        if self.memory_pool is not None:
            self.memory_pool.release(request_id)
        tracked = self._tracked[request_id]
        release = getattr(tracked.session, "release", None)
        if callable(release):
            release()  # paged/arena caches return their rows to the pool
        tracked.session = None  # free the KV cache
        self._running.remove(request_id)

    # -- internals -----------------------------------------------------------------

    def _session_request(self, tracked: _Tracked) -> Request:
        """The request view handed to the session factory.

        First admission passes the request through unchanged.  After a
        preemption this is the *resume view*: the prompt is extended by the
        committed tokens and the budget shrinks by the same amount, so the
        new session's verified prefix is exactly the preempted session's
        committed state and the concatenated output stays within the
        original budget.
        """
        request = tracked.request
        if not tracked.committed:
            return request
        resume = Request(
            request_id=request.request_id,
            prompt=np.concatenate([
                request.prompt,
                np.asarray(tracked.committed, dtype=np.intp),
            ]),
            config=replace(
                request.config,
                max_new_tokens=(request.config.max_new_tokens
                                - len(tracked.committed)),
            ),
            arrival_iteration=request.arrival_iteration,
        )
        resume.state = RequestState.RUNNING
        return resume

    def _admit(self) -> int:
        admitted = 0
        ordered = self.policy(
            [self._tracked[rid].request for rid in self._waiting]
        )
        for request in ordered:
            if len(self._running) >= self.max_batch_size:
                break
            request_id = request.request_id
            tracked = self._tracked[request_id]
            if tracked.cooldown_until > self.iteration:
                continue  # backing off after an admission-time fault
            if not self._try_reserve(request):
                continue  # does not fit in KV memory right now; skip ahead
            try:
                session = self.session_factory(self._session_request(tracked))
            except Exception as exc:
                # The reservation must not outlive a failed admission —
                # leaking it here would strand KV capacity forever.
                if self.memory_pool is not None:
                    self.memory_pool.release(request_id)
                if isinstance(exc, FaultError):
                    # Injected transient fault at admission: the request
                    # stays WAITING and retries with backoff.
                    self._note_session_fault(request_id)
                    continue
                raise
            tracked.session = session
            if tracked.output is None:
                tracked.output = RequestOutput(request_id=request_id)
            tracked.request.state = RequestState.RUNNING
            self._waiting.remove(request_id)
            self._running.append(request_id)
            if self.injector is not None and self.backend is None:
                # Per-request serving: arm each session's standalone
                # pipeline (fused serving arms the one shared pipeline).
                session.attach_injector(self.injector,
                                        self.fallback_cooldown)
            if self.router is not None and self.backend is None:
                # Same split for routing feedback: per-request sessions
                # report acceptance through their own pipelines.
                session.attach_router(self.router)
            admitted += 1
            _ADMITTED.inc()
            TRACER.event(
                "repro.serving.admit",
                request=request_id,
                iteration=self.iteration,
                queued=self.iteration - tracked.request.arrival_iteration,
                prompt_len=len(tracked.request.prompt),
            )
        return admitted

    def _try_reserve(self, request: Request) -> bool:
        if self.memory_pool is None:
            return True
        tokens = (
            len(request.prompt)
            + request.config.max_new_tokens
            + self.kv_headroom
        )
        if not self.memory_pool.can_admit(tokens):
            return False
        self.memory_pool.reserve(request.request_id, tokens)
        return True

    def _retire(self, request_id: int) -> None:
        tracked = self._tracked[request_id]
        session = tracked.session
        output = tracked.output
        output.tokens = tracked.committed + [int(t) for t in session.tokens]
        output.finished_by_eos = session.finished_by_eos
        output.finish_iteration = self.iteration
        output.num_llm_steps = tracked.llm_steps_prior + len(session.steps)
        output.preemptions = tracked.preemptions
        output.retries = tracked.total_retries
        tracked.request.state = RequestState.FINISHED
        self._drop_session(request_id)
        _RETIRED.inc()
        TRACER.event(
            "repro.serving.retire",
            request=request_id,
            iteration=self.iteration,
            tokens=len(output.tokens),
            llm_steps=output.num_llm_steps,
            finished_by_eos=output.finished_by_eos,
        )
