"""The gateway's asyncio driver: SLO-aware ticking over the sync core.

:class:`GatewayLoop` is the only place where the event loop and the
synchronous scheduling core meet.  Each cycle it pumps the gateway's
admission queues, asks :class:`SloScheduler` which running requests should
decode this tick, runs exactly one synchronous
:meth:`~repro.serving.manager.RequestManager.step`, hands the resulting
:class:`~repro.serving.manager.IterationStats` to the gateway's dispatcher
(which fans committed-token deltas into client streams), and yields to the
event loop so client tasks can consume.

The core never blocks on clients and clients never block the core: all
coupling is through the gateway's queues and streams.
"""

from __future__ import annotations

import asyncio
from typing import TYPE_CHECKING, List, Optional

from repro.obs import REGISTRY, TRACER

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from repro.serving.gateway import ServingGateway, _GwRequest

_INTERACTIVE_TICKS = REGISTRY.counter(
    "repro.gateway.interactive_ticks",
    help="TTFT-optimized ticks that decoded only interactive-class requests")
_FULL_TICKS = REGISTRY.counter(
    "repro.gateway.full_ticks",
    help="throughput-optimized ticks that decoded the full batch")


class SloScheduler:
    """Chooses each tick's decode subset from the two SLO classes.

    Policy: while any *interactive* request in the batch is still waiting
    for its first token, run interactive-only ticks — the small batch
    reaches the first commit sooner, which is the whole TTFT objective.
    Everything else (both classes warmed up, or only batch-class work)
    runs full-batch throughput ticks.  ``max_interactive_only_ticks``
    bounds consecutive small ticks so batch-class requests cannot starve
    under a steady interactive arrival stream.

    Under greedy verification the subset choice never changes *what*
    tokens a request emits — only *when* — so this scheduler trades TTFT
    against throughput without touching output parity.
    """

    def __init__(self, max_interactive_only_ticks: int = 4):
        if max_interactive_only_ticks < 0:
            raise ValueError("max_interactive_only_ticks must be >= 0")
        self.max_interactive_only_ticks = max_interactive_only_ticks
        self._consecutive_interactive = 0

    def select(self, running: List["_GwRequest"]) -> Optional[List[int]]:
        """The request-id subset to decode this tick; ``None`` = full batch."""
        from repro.serving.gateway import SloClass

        interactive = [r for r in running if r.slo is SloClass.INTERACTIVE]
        others = len(running) - len(interactive)
        cold = [r for r in interactive if r.first_token_at is None]
        if (cold and others
                and self._consecutive_interactive
                < self.max_interactive_only_ticks):
            self._consecutive_interactive += 1
            return [r.request_id for r in interactive]
        self._consecutive_interactive = 0
        return None


class GatewayLoop:
    """The async driver owning the gateway's tick cadence.

    Args:
        gateway: The :class:`~repro.serving.gateway.ServingGateway` whose
            admission pump, SLO scheduler, and stream dispatcher this loop
            drives.
        tick_yield: Optional sleep between ticks (seconds).  The default
            ``0`` still yields control to the event loop every tick so
            client tasks interleave with decoding.
    """

    def __init__(self, gateway: "ServingGateway", tick_yield: float = 0.0):
        self.gateway = gateway
        self.tick_yield = tick_yield
        self.ticks = 0

    async def run(self) -> None:
        """Drive the gateway until it is closing and fully drained."""
        gateway = self.gateway
        while True:
            gateway._pump_admissions()
            if not gateway.manager.num_running:
                if gateway._closing and not gateway.has_work:
                    return
                if gateway.queue_depth or gateway.manager.num_waiting:
                    # Work exists but nothing is admissible right now
                    # (rate limit, KV pressure, or a requeued request
                    # backing off in the core): run an idle core tick so
                    # the logical clock — and with it the rate buckets and
                    # retry cooldowns — advances.
                    self._tick()
                    await asyncio.sleep(self.tick_yield)
                    continue
                await self._wait_for_work()
                continue
            self._tick()
            await asyncio.sleep(self.tick_yield)

    def _tick(self) -> None:
        """One synchronous core step plus stream dispatch."""
        from repro.serving.gateway import _TICKS

        gateway = self.gateway
        subset = gateway._select_subset()
        with TRACER.span(
            "repro.gateway.tick",
            tick=self.ticks,
            running=gateway.manager.num_running,
            queued=gateway.queue_depth,
            subset=len(subset) if subset is not None else -1,
        ):
            stats = gateway.manager.step(only=subset)
        if subset is None:
            _FULL_TICKS.inc()
        else:
            _INTERACTIVE_TICKS.inc()
        _TICKS.inc()
        self.ticks += 1
        gateway._dispatch(stats)

    async def _wait_for_work(self) -> None:
        """Park until a submission wakes us (or the idle timeout elapses).

        The timeout keeps shutdown responsive even if a wake signal races
        the park; it is not a correctness mechanism.
        """
        gateway = self.gateway
        if gateway._closing and not gateway.has_work:
            return
        gateway._wake.clear()
        if gateway.has_work or gateway._closing:
            return
        try:
            await asyncio.wait_for(
                gateway._wake.wait(),
                timeout=gateway.config.idle_wait_seconds,
            )
        except asyncio.TimeoutError:
            pass
