"""Serving runtime (paper section 5.1).

* :mod:`repro.serving.request` -- request lifecycle types.
* :mod:`repro.serving.session` -- per-request decode sessions: thin
  adapters binding a request to the unified decode pipeline
  (:mod:`repro.engine.pipeline`), advanced one iteration at a time.
* :mod:`repro.serving.manager` -- the request manager: iteration-level
  (Orca-style) scheduling with continuous batching, parameterized by
  verification backend (per-request or fused); finished requests leave
  and waiting requests join the batch between iterations.
* :mod:`repro.serving.batched_manager` -- compatibility shim for the fused
  entry point (``RequestManager`` + ``FusedBackend``).
* :mod:`repro.serving.policies` -- admission-ordering policies (FCFS, SJF,
  priority).
* :mod:`repro.serving.memory` -- KV-cache memory pool and admission control.
* :mod:`repro.serving.metrics` -- TTFT / TPOT / throughput reporting.
* :mod:`repro.serving.gateway` -- the async streaming gateway: bounded
  per-tenant admission queues, weighted round-robin with rate limits, two
  SLO classes, and per-request token streams over the synchronous core.
* :mod:`repro.serving.loop` -- the gateway's asyncio driver and SLO-class
  tick scheduler.
* :mod:`repro.serving.transport` / :mod:`repro.serving.client` -- the
  localhost TCP/JSONL transport and its streaming client.
* :mod:`repro.serving.loadgen` -- concurrent async load generator
  (``repro loadgen``).

The manager is the pure *synchronous core* (admit / step / retire — used
directly by the replay path); the gateway layers live admission policy and
streaming on top.  See ``docs/serving_gateway.md``.
"""

from repro.engine.pipeline import (
    FusedBackend,
    IncrementalBackend,
    PerRequestBackend,
    VerificationBackend,
)
from repro.serving.request import Request, RequestOutput, RequestState
from repro.serving.session import (
    DecodeSession,
    IncrementalSession,
    SpeculativeSession,
)
from repro.serving.batched_manager import BatchedRequestManager
from repro.serving.gateway import (
    AdmissionError,
    GatewayConfig,
    GatewayRequestFailed,
    ServingGateway,
    SloClass,
    StreamEvent,
    TenantConfig,
    TokenStream,
)
from repro.serving.loop import GatewayLoop, SloScheduler
from repro.serving.manager import IterationStats, RequestManager
from repro.serving.memory import KvMemoryPool, KvReservation
from repro.serving.metrics import (
    RequestLatency,
    ServingReport,
    build_report,
    report_from_manager,
    request_latency,
)
from repro.serving.policies import (
    fcfs,
    longest_job_first,
    make_preemption_policy,
    make_priority_policy,
    preempt_newest_first,
    preempt_oldest_first,
    shortest_job_first,
)

__all__ = [
    "Request",
    "RequestOutput",
    "RequestState",
    "DecodeSession",
    "IncrementalSession",
    "SpeculativeSession",
    "RequestManager",
    "BatchedRequestManager",
    "IterationStats",
    "VerificationBackend",
    "PerRequestBackend",
    "FusedBackend",
    "IncrementalBackend",
    "KvMemoryPool",
    "KvReservation",
    "RequestLatency",
    "ServingReport",
    "build_report",
    "report_from_manager",
    "request_latency",
    "fcfs",
    "shortest_job_first",
    "longest_job_first",
    "make_priority_policy",
    "preempt_newest_first",
    "preempt_oldest_first",
    "make_preemption_policy",
    "AdmissionError",
    "GatewayConfig",
    "GatewayLoop",
    "GatewayRequestFailed",
    "ServingGateway",
    "SloClass",
    "SloScheduler",
    "StreamEvent",
    "TenantConfig",
    "TokenStream",
]
