"""KV-cache memory accounting and admission control.

Paper section 2: "caching keys and values introduces significant memory
overhead, which prevents existing systems from serving a large number of
requests in parallel".  This module makes that constraint explicit for the
serving runtime: a :class:`KvMemoryPool` tracks the device-memory budget
available for KV caches, and the request manager consults it before
admitting a request — a request only starts when its worst-case cache
footprint (prompt + generation budget + speculation headroom) fits.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict

from repro.cluster.models import kv_bytes_per_token
from repro.model.config import ModelConfig


@dataclass
class KvReservation:
    """One request's reserved KV budget."""

    request_id: int
    tokens: int
    bytes: int


class KvMemoryPool:
    """Fixed-budget allocator for per-request KV-cache reservations.

    Reservations are worst-case (made at admission, released at retirement),
    matching how conservative serving systems avoid mid-flight OOM.

    All accounting is in *integer* bytes: reservations add and release
    exact amounts, so ``reserved_bytes`` returns to exactly 0 after a
    drained run no matter how many reserve/release (or preempt/readmit)
    cycles happened — float accumulation would drift and strand capacity
    over long runs.

    Args:
        budget_bytes: Device memory available for KV caches (floats are
            truncated to whole bytes).
        model: Architecture whose per-token KV footprint applies.
        bytes_per_value: Cache precision (2 = FP16).
    """

    def __init__(self, budget_bytes: float, model: ModelConfig,
                 bytes_per_value: int = 2):
        if budget_bytes <= 0:
            raise ValueError("budget_bytes must be positive")
        self.budget_bytes = int(budget_bytes)
        if self.budget_bytes <= 0:
            raise ValueError("budget_bytes must be at least one byte")
        self.model = model
        self.bytes_per_token = int(kv_bytes_per_token(model, bytes_per_value))
        self._reservations: Dict[int, KvReservation] = {}
        self._reserved_bytes = 0

    # -- accounting ---------------------------------------------------------------

    @property
    def reserved_bytes(self) -> int:
        return self._reserved_bytes

    @property
    def available_bytes(self) -> int:
        return self.budget_bytes - self._reserved_bytes

    @property
    def num_reservations(self) -> int:
        return len(self._reservations)

    def tokens_to_bytes(self, tokens: int) -> int:
        return tokens * self.bytes_per_token

    def max_concurrent_requests(self, tokens_per_request: int) -> int:
        """How many same-shaped requests the budget can hold at once."""
        per_request = self.tokens_to_bytes(tokens_per_request)
        if per_request <= 0:
            raise ValueError("tokens_per_request must be positive")
        return int(self.budget_bytes // per_request)

    # -- reserve / release -----------------------------------------------------------

    def can_admit(self, tokens: int) -> bool:
        """Would a reservation of ``tokens`` fit right now?"""
        return self.tokens_to_bytes(tokens) <= self.available_bytes

    def reserve(self, request_id: int, tokens: int) -> KvReservation:
        """Reserve KV memory for a request; raises if it does not fit."""
        if request_id in self._reservations:
            raise ValueError(f"request {request_id} already has a reservation")
        nbytes = self.tokens_to_bytes(tokens)
        if nbytes > self.available_bytes:
            raise MemoryError(
                f"KV pool exhausted: need {nbytes / 1e6:.1f} MB, have "
                f"{self.available_bytes / 1e6:.1f} MB"
            )
        reservation = KvReservation(request_id=request_id, tokens=tokens,
                                    bytes=nbytes)
        self._reservations[request_id] = reservation
        self._reserved_bytes += nbytes
        return reservation

    def release(self, request_id: int) -> None:
        """Release a request's reservation (idempotent for unknown ids is
        an error — releasing twice indicates a scheduler bug)."""
        reservation = self._reservations.pop(request_id, None)
        if reservation is None:
            raise KeyError(f"no reservation for request {request_id}")
        self._reserved_bytes -= reservation.bytes


def speculation_headroom(tree_budget: int) -> int:
    """Extra KV rows a speculative session can transiently occupy.

    During verification the cache holds the verified prefix *plus* every
    tree token until compaction, so admission must reserve the tree budget
    on top of prompt + generation tokens (the paper's section 5.3 'memory
    overhead of token tree verification' — small but nonzero).
    """
    if tree_budget < 0:
        raise ValueError("tree_budget must be >= 0")
    return tree_budget
