"""Localhost TCP/JSONL transport for the serving gateway.

Wire protocol (newline-delimited JSON, one connection per client):

* Client → server, one line per request::

      {"op": "generate", "prompt": [1, 2, 3], "max_new_tokens": 16,
       "stop_on_eos": true, "tenant": "alpha", "slo": "interactive"}

  (``op: "ping"`` answers ``{"event": "pong"}`` — liveness check.)

* Server → client, a response header then the event stream::

      {"event": "accepted"}            # queued at the gateway
      {"event": "rejected", "reason": "queue_full"}   # admission refused
      {"event": "token", "token": 17, "index": 0}
      {"event": "stall", "reason": "preempted"}
      {"event": "resume"}
      {"event": "done", "tokens": 8, "request_id": 3}
      {"event": "failed", "reason": "..."}

  ``done`` / ``failed`` / ``rejected`` terminate the stream for that
  request; the connection stays open for the next request line.

The stream events are exactly the gateway's
:class:`~repro.serving.gateway.StreamEvent` records
(:meth:`~repro.serving.gateway.StreamEvent.to_wire`), so in-process and
TCP clients observe identical sequences.
"""

from __future__ import annotations

import asyncio
import json
from typing import Dict, Optional

from repro.engine.generation import GenerationConfig
from repro.obs import REGISTRY
from repro.serving.gateway import AdmissionError, ServingGateway

_CONNECTIONS = REGISTRY.counter(
    "repro.gateway.transport_connections",
    help="TCP client connections accepted by the gateway transport")
_PROTOCOL_ERRORS = REGISTRY.counter(
    "repro.gateway.transport_protocol_errors",
    help="malformed request lines rejected by the gateway transport")


def encode_line(record: Dict[str, object]) -> bytes:
    """One wire line: canonical JSON + newline."""
    return json.dumps(record, sort_keys=True).encode("utf-8") + b"\n"


def decode_line(line: bytes) -> Dict[str, object]:
    """Parse one wire line; raises ``ValueError`` on malformed input."""
    record = json.loads(line.decode("utf-8"))
    if not isinstance(record, dict):
        raise ValueError("wire record must be a JSON object")
    return record


class GatewayServer:
    """A running TCP front end over one :class:`ServingGateway`.

    Obtain via :func:`start_gateway_server`; ``host``/``port`` give the
    bound address (port 0 requests an ephemeral port).
    """

    def __init__(self, gateway: ServingGateway,
                 server: asyncio.AbstractServer):
        self.gateway = gateway
        self._server = server
        sockname = server.sockets[0].getsockname()
        self.host: str = sockname[0]
        self.port: int = sockname[1]

    async def close(self) -> None:
        self._server.close()
        await self._server.wait_closed()

    async def __aenter__(self) -> "GatewayServer":
        return self

    async def __aexit__(self, *exc) -> None:
        await self.close()


async def start_gateway_server(
    gateway: ServingGateway,
    host: str = "127.0.0.1",
    port: int = 0,
) -> GatewayServer:
    """Serve ``gateway`` over TCP/JSONL; returns the bound server."""

    async def handle(reader: asyncio.StreamReader,
                     writer: asyncio.StreamWriter) -> None:
        _CONNECTIONS.inc()
        try:
            while True:
                line = await reader.readline()
                if not line:
                    break
                try:
                    request = decode_line(line)
                except ValueError:
                    _PROTOCOL_ERRORS.inc()
                    writer.write(encode_line(
                        {"event": "error", "reason": "malformed_request"}))
                    await writer.drain()
                    continue
                await _serve_request(gateway, request, writer)
        except (ConnectionResetError, BrokenPipeError):
            pass
        finally:
            writer.close()
            try:
                await writer.wait_closed()
            except (ConnectionResetError, BrokenPipeError):
                pass

    server = await asyncio.start_server(handle, host=host, port=port)
    return GatewayServer(gateway, server)


async def _serve_request(gateway: ServingGateway,
                         request: Dict[str, object],
                         writer: asyncio.StreamWriter) -> None:
    """Handle one request line: submit, then relay the stream."""
    op = request.get("op", "generate")
    if op == "ping":
        writer.write(encode_line({"event": "pong"}))
        await writer.drain()
        return
    if op != "generate":
        _PROTOCOL_ERRORS.inc()
        writer.write(encode_line(
            {"event": "error", "reason": f"unknown_op:{op}"}))
        await writer.drain()
        return
    prompt = request.get("prompt")
    if not isinstance(prompt, list) or not all(
            isinstance(t, int) for t in prompt):
        _PROTOCOL_ERRORS.inc()
        writer.write(encode_line(
            {"event": "error", "reason": "prompt must be a list of ints"}))
        await writer.drain()
        return
    config = _generation_config(request)
    try:
        stream = await gateway.submit(
            prompt,
            config,
            tenant=str(request.get("tenant", "default")),
            slo=str(request.get("slo", "interactive")),
        )
    except AdmissionError as exc:
        writer.write(encode_line({"event": "rejected", "reason": exc.reason}))
        await writer.drain()
        return
    except ValueError as exc:
        _PROTOCOL_ERRORS.inc()
        writer.write(encode_line({"event": "error", "reason": str(exc)}))
        await writer.drain()
        return
    writer.write(encode_line({"event": "accepted"}))
    await writer.drain()
    emitted = 0
    async for event in stream:
        record = event.to_wire()
        if event.kind == "token":
            emitted += 1
        elif event.kind == "done":
            record["tokens"] = emitted
            if stream.request_id is not None:
                record["request_id"] = stream.request_id
        writer.write(encode_line(record))
        await writer.drain()


def _generation_config(request: Dict[str, object]) -> Optional[GenerationConfig]:
    max_new_tokens = request.get("max_new_tokens")
    stop_on_eos = request.get("stop_on_eos")
    if max_new_tokens is None and stop_on_eos is None:
        return None
    kwargs: Dict[str, object] = {}
    if max_new_tokens is not None:
        kwargs["max_new_tokens"] = int(max_new_tokens)
    if stop_on_eos is not None:
        kwargs["stop_on_eos"] = bool(stop_on_eos)
    return GenerationConfig(**kwargs)
