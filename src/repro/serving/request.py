"""Request lifecycle types for the serving runtime."""

from __future__ import annotations

import enum
from dataclasses import dataclass, field
from typing import List, Optional

import numpy as np

from repro.engine.generation import GenerationConfig


class RequestState(enum.Enum):
    """Where a request is in its lifecycle."""

    WAITING = "waiting"
    RUNNING = "running"
    FINISHED = "finished"


@dataclass
class Request:
    """One LLM serving request.

    Attributes:
        request_id: Unique id assigned by the request manager.
        prompt: Input token ids.
        config: Generation bounds/decoding mode.
        arrival_iteration: Manager iteration at which the request arrived.
        state: Lifecycle state (managed by the request manager).
    """

    request_id: int
    prompt: np.ndarray
    config: GenerationConfig
    arrival_iteration: int = 0
    state: RequestState = RequestState.WAITING

    def __post_init__(self) -> None:
        self.prompt = np.asarray(self.prompt, dtype=np.intp)
        if self.prompt.size == 0:
            raise ValueError("prompt must be non-empty")


@dataclass
class RequestOutput:
    """A finished request's result.

    Attributes:
        request_id: The request this output belongs to.
        tokens: Generated tokens.
        finished_by_eos: Whether generation hit EOS (vs the token budget).
        first_token_iteration: Iteration at which the first token appeared.
        finish_iteration: Iteration at which the request completed.
        num_llm_steps: LLM decoding iterations the request consumed.
    """

    request_id: int
    tokens: List[int] = field(default_factory=list)
    finished_by_eos: bool = False
    first_token_iteration: Optional[int] = None
    finish_iteration: Optional[int] = None
    num_llm_steps: int = 0
