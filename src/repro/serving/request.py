"""Request lifecycle types for the serving runtime."""

from __future__ import annotations

import enum
from dataclasses import dataclass, field
from typing import List, Optional

import numpy as np

from repro.engine.generation import GenerationConfig


class RequestState(enum.Enum):
    """Where a request is in its lifecycle.

    ``WAITING -> RUNNING -> FINISHED`` is the happy path.  A preempted
    request moves ``RUNNING -> WAITING`` (it re-enters the queue and
    recomputes from its committed tokens on re-admission).  ``FAILED`` is
    terminal: the manager gave up after exhausting bounded retries, so one
    poisoned request cannot stall the batch.
    """

    WAITING = "waiting"
    RUNNING = "running"
    FINISHED = "finished"
    FAILED = "failed"


@dataclass
class Request:
    """One LLM serving request.

    Attributes:
        request_id: Unique id assigned by the request manager.
        prompt: Input token ids.
        config: Generation bounds/decoding mode.
        arrival_iteration: Manager iteration at which the request arrived.
        state: Lifecycle state (managed by the request manager).
    """

    request_id: int
    prompt: np.ndarray
    config: GenerationConfig
    arrival_iteration: int = 0
    state: RequestState = RequestState.WAITING

    def __post_init__(self) -> None:
        self.prompt = np.asarray(self.prompt, dtype=np.intp)
        if self.prompt.size == 0:
            raise ValueError("prompt must be non-empty")


@dataclass
class RequestOutput:
    """A finished (or failed) request's result.

    Attributes:
        request_id: The request this output belongs to.
        tokens: Generated tokens (partial for FAILED requests).
        finished_by_eos: Whether generation hit EOS (vs the token budget).
        first_token_iteration: Iteration at which the first token appeared
            (``None`` when the request never emitted — e.g. it failed or
            was retired before producing a token).
        finish_iteration: Iteration at which the request completed/failed.
        num_llm_steps: LLM decoding iterations the request consumed, summed
            across preemption incarnations.
        preemptions: Times the request was preempted and requeued.
        retries: Transient session faults absorbed by bounded retry.
        error: Failure reason (``None`` unless the request FAILED).
    """

    request_id: int
    tokens: List[int] = field(default_factory=list)
    finished_by_eos: bool = False
    first_token_iteration: Optional[int] = None
    finish_iteration: Optional[int] = None
    num_llm_steps: int = 0
    preemptions: int = 0
    retries: int = 0
    error: Optional[str] = None
