"""Serving-level latency and throughput metrics.

Converts the request manager's iteration log plus per-request outputs into
the metrics serving papers report: time-to-first-token (TTFT), time per
output token (TPOT), end-to-end completion time, and aggregate throughput.
Times are reported in *iterations* by default — the manager's logical clock
— and can be converted to seconds with a per-iteration latency model (the
cluster simulator's step latencies).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Sequence

import numpy as np

from repro.serving.manager import IterationStats
from repro.serving.request import RequestOutput


@dataclass(frozen=True)
class RequestLatency:
    """One request's latency decomposition (iteration units).

    Attributes:
        request_id: The request.
        queueing: Iterations spent waiting before the first decode, or
            ``None`` when the request never emitted a token.
        ttft: Arrival to first emitted token, or ``None`` when the request
            finished (or failed) without emitting — a tokenless request has
            no first token, so TTFT is undefined rather than zero.
        completion: Arrival to finish.
        tpot: Mean iterations per emitted token once running (0.0 for a
            tokenless request).
    """

    request_id: int
    queueing: Optional[int]
    ttft: Optional[int]
    completion: int
    tpot: float


@dataclass(frozen=True)
class ServingReport:
    """Aggregate metrics over a set of finished requests."""

    num_requests: int
    total_iterations: int
    total_tokens: int
    mean_ttft: float
    p95_ttft: float
    mean_completion: float
    p95_completion: float
    mean_tpot: float
    tokens_per_iteration: float
    mean_batch_occupancy: float


def request_latency(output: RequestOutput, arrival_iteration: int) -> RequestLatency:
    """Latency decomposition for one finished (or failed) request.

    A request that completed without emitting any tokens — it failed, or
    retired with an exhausted context — gets ``ttft=None`` /
    ``queueing=None`` / ``tpot=0.0`` rather than raising: completion time is
    still well-defined for it, and aggregate reports simply exclude it from
    the token-timing statistics.
    """
    if output.finish_iteration is None:
        raise ValueError(f"request {output.request_id} has not finished")
    completion = output.finish_iteration - arrival_iteration
    if output.first_token_iteration is None:
        return RequestLatency(
            request_id=output.request_id,
            queueing=None,
            ttft=None,
            completion=completion,
            tpot=0.0,
        )
    ttft = output.first_token_iteration - arrival_iteration + 1
    running = max(1, output.num_llm_steps)
    return RequestLatency(
        request_id=output.request_id,
        queueing=output.first_token_iteration - arrival_iteration,
        ttft=ttft,
        completion=completion,
        tpot=running / max(1, len(output.tokens)),
    )


def build_report(
    outputs: Sequence[RequestOutput],
    arrivals: Sequence[int],
    iteration_stats: Sequence[IterationStats],
) -> ServingReport:
    """Aggregate a finished run into a :class:`ServingReport`.

    Args:
        outputs: Finished request outputs.
        arrivals: Arrival iteration per output (parallel sequence).
        iteration_stats: The manager's per-iteration log.
    """
    if not outputs:
        raise ValueError("no outputs to report on")
    if len(outputs) != len(arrivals):
        raise ValueError("outputs and arrivals must be parallel")
    latencies = [
        request_latency(output, arrival)
        for output, arrival in zip(outputs, arrivals)
    ]
    # Token-timing statistics only cover requests that actually emitted;
    # tokenless requests (ttft=None) still count toward completion times.
    emitting = [l for l in latencies if l.ttft is not None]
    ttfts = np.array([l.ttft for l in emitting], dtype=np.float64)
    tpots = np.array([l.tpot for l in emitting], dtype=np.float64)
    completions = np.array([l.completion for l in latencies],
                           dtype=np.float64)
    total_tokens = sum(len(o.tokens) for o in outputs)
    busy = [s for s in iteration_stats if s.batch_size > 0]
    total_iterations = len(iteration_stats)
    nan = float("nan")
    return ServingReport(
        num_requests=len(outputs),
        total_iterations=total_iterations,
        total_tokens=total_tokens,
        mean_ttft=float(ttfts.mean()) if emitting else nan,
        p95_ttft=float(np.percentile(ttfts, 95)) if emitting else nan,
        mean_completion=float(completions.mean()),
        p95_completion=float(np.percentile(completions, 95)),
        mean_tpot=float(tpots.mean()) if emitting else nan,
        tokens_per_iteration=total_tokens / max(1, total_iterations),
        mean_batch_occupancy=(
            float(np.mean([s.batch_size for s in busy])) if busy else 0.0
        ),
    )


def report_from_manager(manager) -> ServingReport:
    """Convenience: build a report straight from a drained manager."""
    outputs = manager.finished_outputs()
    arrivals = [
        manager._tracked[o.request_id].request.arrival_iteration
        for o in outputs
    ]
    return build_report(outputs, arrivals, manager.iteration_stats)
