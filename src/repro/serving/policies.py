"""Admission-ordering policies for the request manager.

Orca-style iteration-level scheduling decides *when* requests join the
batch; a policy decides *which* waiting request joins first.  The paper
uses FCFS; shortest-job-first and priority policies are provided for
latency studies (SJF minimizes mean completion time when job lengths are
known, a standard scheduling result that holds per-iteration here).
"""

from __future__ import annotations

from typing import Callable, List, Protocol, Sequence

from repro.serving.request import Request

#: A policy orders the waiting queue; the manager admits from the front.
SchedulingPolicy = Callable[[Sequence[Request]], List[Request]]


def fcfs(waiting: Sequence[Request]) -> List[Request]:
    """First-come-first-served (the paper's policy)."""
    return sorted(waiting, key=lambda r: (r.arrival_iteration, r.request_id))


def shortest_job_first(waiting: Sequence[Request]) -> List[Request]:
    """Admit the smallest total work first (prompt + generation budget).

    Ties break FCFS so the policy stays deterministic and starvation-free
    among equal-length jobs.
    """
    return sorted(
        waiting,
        key=lambda r: (
            len(r.prompt) + r.config.max_new_tokens,
            r.arrival_iteration,
            r.request_id,
        ),
    )


def longest_job_first(waiting: Sequence[Request]) -> List[Request]:
    """Admit the largest total work first (throughput-packing heuristic)."""
    return sorted(
        waiting,
        key=lambda r: (
            -(len(r.prompt) + r.config.max_new_tokens),
            r.arrival_iteration,
            r.request_id,
        ),
    )


def make_priority_policy(
    priority_of: Callable[[Request], float]
) -> SchedulingPolicy:
    """Build a policy from a priority function (lower value = sooner)."""

    def policy(waiting: Sequence[Request]) -> List[Request]:
        return sorted(
            waiting,
            key=lambda r: (priority_of(r), r.arrival_iteration, r.request_id),
        )

    return policy
