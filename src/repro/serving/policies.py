"""Admission-ordering policies for the request manager.

Orca-style iteration-level scheduling decides *when* requests join the
batch; a policy decides *which* waiting request joins first.  The paper
uses FCFS; shortest-job-first and priority policies are provided for
latency studies (SJF minimizes mean completion time when job lengths are
known, a standard scheduling result that holds per-iteration here).
"""

from __future__ import annotations

from typing import Callable, List, Protocol, Sequence

from repro.serving.request import Request

#: A policy orders the waiting queue; the manager admits from the front.
SchedulingPolicy = Callable[[Sequence[Request]], List[Request]]


def fcfs(waiting: Sequence[Request]) -> List[Request]:
    """First-come-first-served (the paper's policy)."""
    return sorted(waiting, key=lambda r: (r.arrival_iteration, r.request_id))


def shortest_job_first(waiting: Sequence[Request]) -> List[Request]:
    """Admit the smallest total work first (prompt + generation budget).

    Ties break FCFS so the policy stays deterministic and starvation-free
    among equal-length jobs.
    """
    return sorted(
        waiting,
        key=lambda r: (
            len(r.prompt) + r.config.max_new_tokens,
            r.arrival_iteration,
            r.request_id,
        ),
    )


def longest_job_first(waiting: Sequence[Request]) -> List[Request]:
    """Admit the largest total work first (throughput-packing heuristic)."""
    return sorted(
        waiting,
        key=lambda r: (
            -(len(r.prompt) + r.config.max_new_tokens),
            r.arrival_iteration,
            r.request_id,
        ),
    )


def make_priority_policy(
    priority_of: Callable[[Request], float]
) -> SchedulingPolicy:
    """Build a policy from a priority function (lower value = sooner)."""

    def policy(waiting: Sequence[Request]) -> List[Request]:
        return sorted(
            waiting,
            key=lambda r: (priority_of(r), r.arrival_iteration, r.request_id),
        )

    return policy


# -- preemption victim selection ---------------------------------------------------

#: Orders the RUNNING requests; the manager preempts from the front.  Used
#: when KV pressure forces the batch to shed load (fault injection or real
#: memory spikes); the victim is requeued and recomputes from its committed
#: tokens.
PreemptionPolicy = Callable[[Sequence[Request]], List[Request]]


def preempt_newest_first(running: Sequence[Request]) -> List[Request]:
    """Preempt the most recently arrived request first (default).

    The newest request has the least sunk verification work, so requeueing
    it wastes the least recompute; FCFS fairness is preserved for the
    requests that have waited longest.  Ties break on the higher request id
    (later submission) so the ordering stays deterministic.
    """
    return sorted(
        running,
        key=lambda r: (-r.arrival_iteration, -r.request_id),
    )


def preempt_oldest_first(running: Sequence[Request]) -> List[Request]:
    """Preempt the oldest request first (drain-the-stragglers heuristic)."""
    return sorted(
        running,
        key=lambda r: (r.arrival_iteration, r.request_id),
    )


def make_preemption_policy(
    victim_cost: Callable[[Request], float]
) -> PreemptionPolicy:
    """Build a preemption policy from a cost function (lower = preempt
    sooner)."""

    def policy(running: Sequence[Request]) -> List[Request]:
        return sorted(
            running,
            key=lambda r: (victim_cost(r), -r.arrival_iteration, -r.request_id),
        )

    return policy
