"""Request manager with fused cross-request verification.

The base :class:`~repro.serving.manager.RequestManager` advances sessions
one by one; the real system (and its cost model) verifies the *whole
batch's* token trees in one fused pass per iteration — Figure 6's workflow.
:class:`BatchedRequestManager` realizes that: each iteration it collects
every running speculative session's tree (phase 1), runs a single
:class:`~repro.engine.batched.BatchedTreeVerifier` pass over the batch, and
commits the per-request outcomes (phase 2).

Outputs are identical to per-request serving (the fused pass is
bit-equivalent — see ``tests/engine/test_batched.py``); what changes is
fidelity: the iteration really is one decoding pass, so per-iteration
statistics map one-to-one onto cost-model steps.
"""

from __future__ import annotations

from typing import Callable, List, Optional

import numpy as np

from repro.engine.batched import BatchedTreeVerifier
from repro.model.sampling import SamplingConfig
from repro.model.transformer import TransformerLM
from repro.serving.manager import IterationStats, RequestManager
from repro.serving.session import SpeculativeSession


class BatchedRequestManager(RequestManager):
    """Continuous batching with one fused verification pass per iteration.

    The fused pass runs the block-sparse path by default: batched GEMMs
    with per-request block attention over each session's own cache rows
    (see :meth:`~repro.model.transformer.TransformerLM.forward_masked_blocks`).
    Place session caches in a shared :class:`~repro.model.arena.BatchArena`
    (``cache_factory=arena.new_sequence`` in the session factory) and the
    batched step reads keys/values straight from the slab — no per-layer
    concatenation, no per-step KV copies.

    Args:
        session_factory: Must produce :class:`SpeculativeSession` objects
            (two-phase stepping is required for fused verification).
        model: The shared LLM (the fused verifier runs over it).
        sampling: Decoding mode shared by the batch.
        seed: RNG seed for stochastic verification.
        mode: Fused-pass execution path — ``"block"`` (block-sparse,
            default) or ``"dense"`` (reference block-diagonal mask).
        **manager_kwargs: Forwarded to :class:`RequestManager`
            (``max_batch_size``, ``policy``, ``memory_pool``...).
    """

    def __init__(
        self,
        session_factory: Callable,
        model: TransformerLM,
        sampling: Optional[SamplingConfig] = None,
        seed: int = 0,
        mode: str = "block",
        **manager_kwargs,
    ):
        super().__init__(session_factory, **manager_kwargs)
        self._batched_verifier = BatchedTreeVerifier(
            model,
            sampling=sampling or SamplingConfig(greedy=True),
            rng=np.random.default_rng(seed),
            mode=mode,
        )

    def run_iteration(self) -> IterationStats:
        """One iteration: admit, speculate all, verify fused, commit all."""
        admitted = self._admit()
        active: List[int] = []
        trees = []
        caches = []
        for request_id in self._running:
            session = self._tracked[request_id].session
            if not isinstance(session, SpeculativeSession):
                raise TypeError(
                    "BatchedRequestManager requires SpeculativeSession "
                    f"sessions; got {type(session).__name__}"
                )
            if session.finished:
                continue
            tree = session.prepare_step()
            if tree is None:
                continue
            active.append(request_id)
            trees.append(tree)
            caches.append(session.cache)

        results = self._batched_verifier.verify_batch(trees, caches)

        tokens_emitted = 0
        llm_tokens = 0
        finished_ids: List[int] = []
        committed = dict(zip(active, zip(trees, results)))
        for request_id in list(self._running):
            tracked = self._tracked[request_id]
            session = tracked.session
            emitted: List[int] = []
            if request_id in committed:
                tree, result = committed[request_id]
                emitted = session.commit_step(tree, result)
                tokens_emitted += len(emitted)
                llm_tokens += len(tree)
            output = tracked.output
            if emitted and output.first_token_iteration is None:
                output.first_token_iteration = self.iteration
            if session.finished or request_id not in committed:
                finished_ids.append(request_id)
        for request_id in finished_ids:
            self._retire(request_id)
        stats = IterationStats(
            iteration=self.iteration,
            batch_size=len(active),
            tokens_emitted=tokens_emitted,
            llm_tokens_scored=llm_tokens,
            admitted=admitted,
            finished=len(finished_ids),
        )
        self.iteration_stats.append(stats)
        self.iteration += 1
        return stats
