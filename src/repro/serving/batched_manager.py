"""Compatibility shim: the fused-verification request manager entry point.

Historically this module implemented its own scheduling loop; that loop now
lives in :class:`~repro.serving.manager.RequestManager`, parameterized by a
:class:`~repro.engine.pipeline.VerificationBackend`.
:class:`BatchedRequestManager` survives as a constructor shim so downstream
benchmarks, examples, and the cluster simulator keep working: it is exactly
``RequestManager(session_factory, backend=FusedBackend(model, ...))``.

Each iteration the fused backend collects every running speculative
session's token tree (phase 1), runs a single
:class:`~repro.engine.batched.BatchedTreeVerifier` pass over the batch, and
commits the per-request outcomes (phase 2) — Figure 6's workflow.  Outputs
are identical to per-request serving (the fused pass is bit-equivalent —
see ``tests/engine/test_batched.py`` and
``tests/serving/test_backend_parity.py``).
"""

from __future__ import annotations

from typing import Callable, Optional

import numpy as np

from repro.engine.pipeline import FusedBackend
from repro.model.sampling import SamplingConfig
from repro.model.transformer import TransformerLM
from repro.serving.manager import IterationStats, RequestManager

__all__ = ["BatchedRequestManager", "IterationStats"]


class BatchedRequestManager(RequestManager):
    """Continuous batching with one fused verification pass per iteration.

    The fused pass runs the block-sparse path by default: batched GEMMs
    with per-request block attention over each session's own cache rows
    (see :meth:`~repro.model.transformer.TransformerLM.forward_masked_blocks`).
    Place session caches in a shared :class:`~repro.model.arena.BatchArena`
    (``cache_factory=arena.new_sequence`` in the session factory) and the
    batched step reads keys/values straight from the slab — no per-layer
    concatenation, no per-step KV copies.

    Args:
        session_factory: Must produce :class:`SpeculativeSession` objects
            (two-phase stepping is required for fused verification).
        model: The shared LLM (the fused verifier runs over it).
        sampling: Decoding mode shared by the batch.
        seed: RNG seed for stochastic verification.
        mode: Fused-pass execution path — ``"block"`` (block-sparse,
            default) or ``"dense"`` (reference block-diagonal mask).
        **manager_kwargs: Forwarded to :class:`RequestManager`
            (``max_batch_size``, ``policy``, ``memory_pool``...).
    """

    def __init__(
        self,
        session_factory: Callable,
        model: TransformerLM,
        sampling: Optional[SamplingConfig] = None,
        seed: int = 0,
        mode: str = "block",
        **manager_kwargs,
    ):
        super().__init__(
            session_factory,
            backend=FusedBackend(
                model,
                sampling=sampling or SamplingConfig(greedy=True),
                rng=np.random.default_rng(seed),
                mode=mode,
            ),
            **manager_kwargs,
        )
