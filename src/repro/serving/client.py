"""Streaming TCP client for the serving gateway.

The consumer half of :mod:`repro.serving.transport`'s JSONL protocol:
:class:`GatewayClient` opens one connection, sends request lines, and
yields the streamed event records as they arrive — so a CLI chat session
(or a load generator running many clients concurrently) observes tokens
with the same incremental cadence the gateway commits them.
"""

from __future__ import annotations

import asyncio
from dataclasses import dataclass, field
from typing import AsyncIterator, Dict, List, Optional, Sequence

from repro.serving.transport import decode_line, encode_line

_TERMINAL_EVENTS = ("done", "failed", "rejected", "error")


class GatewayClientError(RuntimeError):
    """The server closed the connection or broke protocol."""


@dataclass
class GenerationStream:
    """Result of one streamed generation as observed by a client.

    Attributes:
        tokens: Tokens received, in order.
        events: Every wire event, in order (including the terminal one).
        status: Terminal event kind — ``done``, ``failed``, ``rejected``,
            or ``error``.
        reason: Terminal reason for non-``done`` outcomes.
        stalls: Mid-stream stalls observed (preemptions survived).
    """

    tokens: List[int] = field(default_factory=list)
    events: List[Dict[str, object]] = field(default_factory=list)
    status: str = "done"
    reason: Optional[str] = None
    stalls: int = 0


class GatewayClient:
    """One TCP/JSONL connection to a running gateway server.

    Usage::

        client = await GatewayClient.connect(host, port)
        async for event in client.generate(prompt, max_new_tokens=16):
            ...
        await client.close()

    Requests on one client are sequential (one stream at a time per
    connection); concurrency comes from running many clients.
    """

    def __init__(self, reader: asyncio.StreamReader,
                 writer: asyncio.StreamWriter):
        self._reader = reader
        self._writer = writer

    @classmethod
    async def connect(cls, host: str, port: int) -> "GatewayClient":
        reader, writer = await asyncio.open_connection(host, port)
        return cls(reader, writer)

    async def close(self) -> None:
        self._writer.close()
        try:
            await self._writer.wait_closed()
        except (ConnectionResetError, BrokenPipeError):
            pass

    async def __aenter__(self) -> "GatewayClient":
        return self

    async def __aexit__(self, *exc) -> None:
        await self.close()

    async def ping(self) -> bool:
        """Liveness check; True iff the server answers ``pong``."""
        self._writer.write(encode_line({"op": "ping"}))
        await self._writer.drain()
        record = await self._read_event()
        return record.get("event") == "pong"

    async def generate(
        self,
        prompt: Sequence[int],
        max_new_tokens: Optional[int] = None,
        tenant: str = "default",
        slo: str = "interactive",
        stop_on_eos: Optional[bool] = None,
    ) -> AsyncIterator[Dict[str, object]]:
        """Stream one generation; yields wire events up to the terminal one.

        The first yielded event is the response header (``accepted`` or
        ``rejected``); a ``rejected`` header is terminal.
        """
        request: Dict[str, object] = {
            "op": "generate",
            "prompt": [int(t) for t in prompt],
            "tenant": tenant,
            "slo": slo,
        }
        if max_new_tokens is not None:
            request["max_new_tokens"] = int(max_new_tokens)
        if stop_on_eos is not None:
            request["stop_on_eos"] = bool(stop_on_eos)
        self._writer.write(encode_line(request))
        await self._writer.drain()
        while True:
            record = await self._read_event()
            yield record
            if record.get("event") in _TERMINAL_EVENTS:
                return

    async def collect(
        self,
        prompt: Sequence[int],
        max_new_tokens: Optional[int] = None,
        tenant: str = "default",
        slo: str = "interactive",
        stop_on_eos: Optional[bool] = None,
    ) -> GenerationStream:
        """Run one generation to completion; returns the full stream."""
        result = GenerationStream()
        async for record in self.generate(prompt, max_new_tokens,
                                          tenant=tenant, slo=slo,
                                          stop_on_eos=stop_on_eos):
            result.events.append(record)
            kind = record.get("event")
            if kind == "token":
                result.tokens.append(int(record["token"]))
            elif kind == "stall":
                result.stalls += 1
            if kind in _TERMINAL_EVENTS:
                result.status = str(kind)
                reason = record.get("reason")
                result.reason = str(reason) if reason is not None else None
        return result

    async def _read_event(self) -> Dict[str, object]:
        line = await self._reader.readline()
        if not line:
            raise GatewayClientError("server closed the connection")
        try:
            return decode_line(line)
        except ValueError as exc:
            raise GatewayClientError(f"malformed server line: {exc}") from exc
