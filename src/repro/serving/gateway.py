"""The async streaming serving gateway: the system's front door.

The replay stack (:func:`repro.workloads.arrival.drive_manager`) feeds a
pre-scheduled arrival list into the request manager; this module serves
*live* traffic instead.  A :class:`ServingGateway` accepts concurrent
client requests over an in-process async API (and, via
:mod:`repro.serving.transport`, a localhost TCP/JSONL transport), owns
admission control, and streams tokens back as each
:class:`~repro.engine.pipeline.DecodePipeline` tick commits them.

Layering (see ``docs/serving_gateway.md``):

* :class:`~repro.serving.manager.RequestManager` stays the pure
  *synchronous core* — ``admit`` / ``step`` / retire, no awareness of
  clients, tenants, or wall-clock time.  The replay path drives it
  unchanged.
* :class:`ServingGateway` (this module) is the *policy* layer: bounded
  per-tenant queues, a KV-reservation precheck before any submit reaches
  the core, per-tenant weighted round-robin with rate limits, and two SLO
  classes (:class:`SloClass`).
* :class:`~repro.serving.loop.GatewayLoop` is the asyncio *driver*: it
  pumps admissions, picks the per-tick decode subset from the SLO
  scheduler, runs one core ``step``, and dispatches the per-request
  committed-token deltas (``IterationStats.emissions``) into client
  streams.

Mid-stream fault tolerance is inherited from the core: a preempted
request's stream sees a ``stall`` event, then a ``resume`` and the
continuation tokens — never duplicated or corrupted output, because the
core re-derives the resumed session from the committed prefix and the
stream only ever forwards per-tick deltas.

Everything is observable under ``repro.gateway.*`` (queue depth, admission
outcomes, per-SLO-class TTFT/TBT histograms) plus gateway trace spans.
"""

from __future__ import annotations

import asyncio
import enum
import time
from collections import deque
from dataclasses import dataclass, field
from typing import Deque, Dict, List, Optional, Sequence

from repro.engine.generation import GenerationConfig
from repro.obs import REGISTRY, TRACER
from repro.serving.manager import RequestManager
from repro.serving.request import RequestOutput

_SUBMITTED = REGISTRY.counter(
    "repro.gateway.submitted", help="requests offered to the gateway")
_ADMITTED = REGISTRY.counter(
    "repro.gateway.admitted", help="requests admitted into the decode core")
_REJECTED = REGISTRY.counter(
    "repro.gateway.rejected", help="requests rejected at admission (all reasons)")
_REJECTED_QUEUE = REGISTRY.counter(
    "repro.gateway.rejected_queue_full",
    help="requests rejected because the tenant queue was full")
_REJECTED_UNSERVABLE = REGISTRY.counter(
    "repro.gateway.rejected_unservable",
    help="requests rejected because they can never fit the KV budget")
_DEFERRED = REGISTRY.counter(
    "repro.gateway.admission_deferred",
    help="admission attempts deferred (KV pressure or rate limit); the "
         "request stays queued and retries next tick")
_QUEUE_DEPTH = REGISTRY.gauge(
    "repro.gateway.queue_depth",
    help="requests queued across all tenants awaiting admission")
_STREAMS_OPEN = REGISTRY.gauge(
    "repro.gateway.streams_open", help="client token streams currently open")
_TICKS = REGISTRY.counter(
    "repro.gateway.ticks", help="gateway event-loop decode ticks")
_STALLS = REGISTRY.counter(
    "repro.gateway.stalls",
    help="mid-stream stalls surfaced to clients (preemptions)")

#: Histogram bucket bounds for client-observed latencies (seconds).  The
#: toy substrate decodes a tick in well under a millisecond, so the lower
#: edge resolves sub-millisecond TTFT; the upper edges absorb loaded runs.
_LATENCY_BUCKETS = (1e-4, 5e-4, 1e-3, 5e-3, 1e-2, 5e-2, 1e-1, 5e-1, 1.0,
                    5.0, 30.0)


class SloClass(enum.Enum):
    """The gateway's two service-level objective classes.

    ``INTERACTIVE`` optimizes time-to-first-token: while an interactive
    request is still waiting for its first token, the SLO scheduler runs
    small interactive-only ticks so the new request is not queued behind a
    full throughput batch.  ``BATCH`` optimizes throughput: batch-class
    requests decode in full-batch ticks and tolerate TTFT.
    """

    INTERACTIVE = "interactive"
    BATCH = "batch"

    @classmethod
    def parse(cls, value: "str | SloClass") -> "SloClass":
        if isinstance(value, cls):
            return value
        try:
            return cls(str(value).lower())
        except ValueError:
            raise ValueError(
                f"unknown SLO class {value!r}; expected one of "
                f"{[c.value for c in cls]}"
            ) from None


def _slo_histogram(stem: str) -> Dict[SloClass, object]:
    return {
        slo: REGISTRY.histogram(
            f"repro.gateway.{stem}.{slo.value}", buckets=_LATENCY_BUCKETS,
            help=f"{stem.replace('_', ' ')} for {slo.value}-class requests",
        )
        for slo in SloClass
    }


_TTFT = _slo_histogram("ttft_seconds")
_TBT = _slo_histogram("tbt_seconds")


@dataclass(frozen=True)
class TenantConfig:
    """Per-tenant admission policy.

    Attributes:
        name: Tenant identifier.
        weight: Weighted-round-robin share relative to other tenants.
        max_queue_depth: Bounded-queue limit; submissions beyond it are
            rejected with ``queue_full`` (backpressure, not buffering).
        rate_per_tick: Admissions allowed per gateway tick (token bucket);
            ``None`` disables rate limiting for the tenant.
        burst: Token-bucket capacity; defaults to ``max(1, rate_per_tick)``.
    """

    name: str
    weight: int = 1
    max_queue_depth: int = 16
    rate_per_tick: Optional[float] = None
    burst: Optional[float] = None

    def __post_init__(self) -> None:
        if self.weight < 1:
            raise ValueError("weight must be >= 1")
        if self.max_queue_depth < 1:
            raise ValueError("max_queue_depth must be >= 1")
        if self.rate_per_tick is not None and self.rate_per_tick <= 0:
            raise ValueError("rate_per_tick must be positive")

    @property
    def bucket_capacity(self) -> float:
        if self.rate_per_tick is None:
            return float("inf")
        if self.burst is not None:
            return float(self.burst)
        return max(1.0, float(self.rate_per_tick))


@dataclass(frozen=True)
class GatewayConfig:
    """Gateway-wide policy knobs.

    Attributes:
        tenants: Explicit tenant configurations by name.
        auto_tenants: Whether submissions naming an unknown tenant create
            one on the fly from ``default_tenant_template``.
        default_tenant_template: Policy applied to auto-created tenants.
        max_interactive_only_ticks: Starvation bound for the SLO scheduler
            — consecutive interactive-only ticks allowed while batch-class
            requests hold slots.
        idle_wait_seconds: How long the loop parks waiting for a wake
            signal when it has no work.
    """

    tenants: Dict[str, TenantConfig] = field(default_factory=dict)
    auto_tenants: bool = True
    default_tenant_template: TenantConfig = field(
        default_factory=lambda: TenantConfig(name="default"))
    max_interactive_only_ticks: int = 4
    idle_wait_seconds: float = 0.05


class AdmissionError(RuntimeError):
    """A submission the gateway refused to queue.

    Attributes:
        reason: Machine-readable reason — ``queue_full`` (tenant queue at
            its bound) or ``unservable`` (the request can never hold a KV
            reservation even against an empty pool).
    """

    def __init__(self, reason: str, detail: str = ""):
        super().__init__(detail or reason)
        self.reason = reason


@dataclass(frozen=True)
class StreamEvent:
    """One event on a client token stream.

    ``kind`` is one of ``token`` (one committed token), ``stall`` (the
    request was preempted mid-stream; tokens pause but nothing is lost),
    ``resume`` (the preempted request re-entered the batch and its next
    delta follows), ``done`` (terminal success), or ``failed`` (terminal
    failure after bounded retries).
    """

    kind: str
    token: Optional[int] = None
    index: Optional[int] = None
    reason: Optional[str] = None

    def to_wire(self) -> Dict[str, object]:
        """The event as a JSONL-friendly dict (transport encoding)."""
        record: Dict[str, object] = {"event": self.kind}
        if self.token is not None:
            record["token"] = self.token
        if self.index is not None:
            record["index"] = self.index
        if self.reason is not None:
            record["reason"] = self.reason
        return record


_TERMINAL = ("done", "failed")


class TokenStream:
    """The client half of one streaming request.

    Async-iterate to receive :class:`StreamEvent`s as the decode loop
    commits them; iteration ends after the terminal ``done``/``failed``
    event (which is itself yielded).  :meth:`collect` is the convenience
    wrapper that gathers just the tokens.
    """

    def __init__(self, tenant: str, slo: SloClass):
        self.tenant = tenant
        self.slo = slo
        self.request_id: Optional[int] = None
        self.output: Optional[RequestOutput] = None
        self.error: Optional[str] = None
        self.closed = False
        self._queue: "asyncio.Queue[StreamEvent]" = asyncio.Queue()
        self._drained = False

    # -- producer side (gateway loop) ----------------------------------------------

    def push(self, event: StreamEvent) -> None:
        if self.closed:
            return
        self._queue.put_nowait(event)
        if event.kind in _TERMINAL:
            self.closed = True
            _STREAMS_OPEN.add(-1)

    # -- consumer side (client) ----------------------------------------------------

    def __aiter__(self) -> "TokenStream":
        return self

    async def __anext__(self) -> StreamEvent:
        if self._drained:
            raise StopAsyncIteration
        event = await self._queue.get()
        if event.kind in _TERMINAL:
            self._drained = True
        return event

    async def collect(self) -> List[int]:
        """Drain the stream; returns the full token list.

        Raises :class:`GatewayRequestFailed` if the request terminally
        failed (the partial tokens ride on the exception).
        """
        tokens: List[int] = []
        async for event in self:
            if event.kind == "token":
                tokens.append(int(event.token))
            elif event.kind == "failed":
                raise GatewayRequestFailed(event.reason or "failed", tokens)
        return tokens


class GatewayRequestFailed(RuntimeError):
    """A streamed request ended in terminal failure."""

    def __init__(self, reason: str, partial_tokens: List[int]):
        super().__init__(reason)
        self.partial_tokens = partial_tokens


@dataclass
class _TenantState:
    """One tenant's live admission state."""

    config: TenantConfig
    queue: Deque["_GwRequest"] = field(default_factory=deque)
    bucket: float = 0.0

    def refill(self) -> None:
        rate = self.config.rate_per_tick
        if rate is None:
            return
        self.bucket = min(self.config.bucket_capacity, self.bucket + rate)


@dataclass
class _GwRequest:
    """Gateway-side tracking for one submission."""

    prompt: List[int]
    config: GenerationConfig
    tenant: str
    slo: SloClass
    stream: TokenStream
    submitted_at: float
    request_id: Optional[int] = None
    first_token_at: Optional[float] = None
    last_token_at: Optional[float] = None
    emitted: int = 0
    stalled: bool = False


class ServingGateway:
    """Admission control + streaming dispatch over the synchronous core.

    Args:
        manager: The synchronous scheduling core.  The gateway assumes
            exclusive ownership: nothing else may submit to or step the
            manager while the gateway is running.
        config: Gateway policy knobs.

    Usage::

        gateway = ServingGateway(manager)
        await gateway.start()
        stream = await gateway.submit(prompt, config, tenant="alpha",
                                      slo=SloClass.INTERACTIVE)
        async for event in stream: ...
        await gateway.stop()
    """

    def __init__(self, manager: RequestManager,
                 config: Optional[GatewayConfig] = None):
        from repro.serving.loop import GatewayLoop, SloScheduler

        self.manager = manager
        self.config = config or GatewayConfig()
        self._tenants: Dict[str, _TenantState] = {
            name: _TenantState(config=cfg)
            for name, cfg in self.config.tenants.items()
        }
        self._by_id: Dict[int, _GwRequest] = {}
        self._wrr_credit: Dict[str, float] = {}
        self._scheduler = SloScheduler(
            self.config.max_interactive_only_ticks)
        self._loop_driver = GatewayLoop(self)
        self._task: Optional[asyncio.Task] = None
        self._wake: Optional[asyncio.Event] = None
        self._closing = False
        self.peak_queue_depth = 0

    # -- lifecycle -----------------------------------------------------------------

    async def start(self) -> None:
        """Spawn the event-loop driver task."""
        if self._task is not None:
            raise RuntimeError("gateway already started")
        self._closing = False
        self._wake = asyncio.Event()
        self._task = asyncio.get_running_loop().create_task(
            self._loop_driver.run())

    async def stop(self, drain: bool = True) -> None:
        """Stop the driver; by default drain all in-flight work first."""
        if self._task is None:
            return
        if not drain:
            self._abort_queued("shutdown")
        self._closing = True
        self._wake.set()
        await self._task
        self._task = None

    def _abort_queued(self, reason: str) -> None:
        for state in self._tenants.values():
            while state.queue:
                gwreq = state.queue.popleft()
                gwreq.stream.push(StreamEvent(kind="failed", reason=reason))
        _QUEUE_DEPTH.set(0)

    @property
    def running(self) -> bool:
        return self._task is not None

    @property
    def has_work(self) -> bool:
        return self.manager.has_work or any(
            state.queue for state in self._tenants.values()
        )

    @property
    def queue_depth(self) -> int:
        return sum(len(state.queue) for state in self._tenants.values())

    # -- submission ----------------------------------------------------------------

    def _tenant_state(self, tenant: str) -> _TenantState:
        state = self._tenants.get(tenant)
        if state is None:
            if not self.config.auto_tenants:
                raise AdmissionError("unknown_tenant",
                                     f"unknown tenant {tenant!r}")
            template = self.config.default_tenant_template
            state = _TenantState(config=TenantConfig(
                name=tenant,
                weight=template.weight,
                max_queue_depth=template.max_queue_depth,
                rate_per_tick=template.rate_per_tick,
                burst=template.burst,
            ))
            self._tenants[tenant] = state
        return state

    async def submit(
        self,
        prompt: Sequence[int],
        config: Optional[GenerationConfig] = None,
        tenant: str = "default",
        slo: "str | SloClass" = SloClass.INTERACTIVE,
    ) -> TokenStream:
        """Offer a request; returns its :class:`TokenStream` when queued.

        Raises :class:`AdmissionError` when the tenant's bounded queue is
        full (``queue_full``) or the request could never hold a KV
        reservation even alone (``unservable``).  Rate limits and
        transient KV pressure do *not* reject — the request waits in the
        tenant queue and the admission pump retries it each tick.
        """
        _SUBMITTED.inc()
        slo = SloClass.parse(slo)
        config = config or GenerationConfig()
        state = self._tenant_state(tenant)
        prompt_list = [int(t) for t in prompt]
        if len(state.queue) >= state.config.max_queue_depth:
            _REJECTED.inc()
            _REJECTED_QUEUE.inc()
            TRACER.event("repro.gateway.reject", tenant=tenant,
                         reason="queue_full")
            raise AdmissionError(
                "queue_full",
                f"tenant {tenant!r} queue at bound "
                f"{state.config.max_queue_depth}")
        if not self._fits_alone(prompt_list, config):
            _REJECTED.inc()
            _REJECTED_UNSERVABLE.inc()
            TRACER.event("repro.gateway.reject", tenant=tenant,
                         reason="unservable")
            raise AdmissionError(
                "unservable",
                "request exceeds the KV budget even against an empty pool")
        stream = TokenStream(tenant=tenant, slo=slo)
        gwreq = _GwRequest(
            prompt=prompt_list,
            config=config,
            tenant=tenant,
            slo=slo,
            stream=stream,
            submitted_at=time.perf_counter(),
        )
        state.queue.append(gwreq)
        _STREAMS_OPEN.add(1)
        _QUEUE_DEPTH.set(self.queue_depth)
        self.peak_queue_depth = max(self.peak_queue_depth, self.queue_depth)
        TRACER.event("repro.gateway.submit", tenant=tenant, slo=slo.value,
                     prompt_len=len(prompt_list), queued=self.queue_depth)
        if self._wake is not None:
            self._wake.set()
        return stream

    def _fits_alone(self, prompt: List[int],
                    config: GenerationConfig) -> bool:
        """Could this request ever be admitted, even into an empty pool?"""
        pool = self.manager.memory_pool
        if pool is None:
            return True
        tokens = (len(prompt) + config.max_new_tokens
                  + self.manager.kv_headroom)
        return pool.tokens_to_bytes(tokens) <= pool.budget_bytes

    # -- admission pump (called by the loop driver each tick) ----------------------

    def _pump_admissions(self) -> int:
        """Move queued requests into the core, WRR across tenants.

        A candidate is admitted only when a batch slot is free *and* its
        KV reservation fits right now *and* its tenant's rate bucket has
        credit; otherwise it stays queued (deferred, not rejected).
        Within one tenant the queue is strictly FIFO so admission order
        matches submission order — the property the replay-parity suite
        pins.

        Requests already waiting *inside* the core — preempted-and-requeued
        or backing off after an admission-time fault — take precedence:
        they went through gateway admission once and their (earlier)
        arrival iteration wins the core's FCFS ordering, so the pump leaves
        slots for them before submitting new work.
        """
        for state in self._tenants.values():
            state.refill()
        admitted = 0
        blocked: set = set()
        requeued = self.manager.num_waiting
        while self.manager.free_slots - requeued - admitted > 0:
            eligible = {
                name: state.config.weight
                for name, state in self._tenants.items()
                if state.queue and name not in blocked
            }
            if not eligible:
                break
            name = self._wrr_next(eligible)
            state = self._tenants[name]
            gwreq = state.queue[0]
            if state.config.rate_per_tick is not None and state.bucket < 1.0:
                _DEFERRED.inc()
                blocked.add(name)
                continue
            if not self.manager.can_reserve(len(gwreq.prompt),
                                            gwreq.config.max_new_tokens):
                _DEFERRED.inc()
                blocked.add(name)
                continue
            state.queue.popleft()
            if state.config.rate_per_tick is not None:
                state.bucket -= 1.0
            request_id = self.manager.submit(gwreq.prompt, gwreq.config)
            gwreq.request_id = request_id
            gwreq.stream.request_id = request_id
            self._by_id[request_id] = gwreq
            admitted += 1
            _ADMITTED.inc()
            TRACER.event("repro.gateway.admit", request=request_id,
                         tenant=name, slo=gwreq.slo.value)
        if admitted or self.manager.num_waiting:
            # Fill slots even with nothing newly submitted: the core's own
            # waiting queue holds preempted/requeued requests that must
            # re-enter once their cooldown lapses or KV memory frees up.
            self.manager.admit()
        _QUEUE_DEPTH.set(self.queue_depth)
        self.peak_queue_depth = max(self.peak_queue_depth, self.queue_depth)
        return admitted

    def _wrr_next(self, eligible: Dict[str, int]) -> str:
        """Smooth weighted round-robin over the eligible tenants."""
        total = sum(eligible.values())
        best: Optional[str] = None
        for name in sorted(eligible):
            credit = self._wrr_credit.get(name, 0.0) + eligible[name]
            self._wrr_credit[name] = credit
            if best is None or credit > self._wrr_credit[best]:
                best = name
        self._wrr_credit[best] -= total
        return best

    # -- dispatch (called by the loop driver after each core step) -----------------

    def _running_requests(self) -> List[_GwRequest]:
        """Gateway views of the requests currently holding batch slots."""
        return [
            self._by_id[rid]
            for rid in self.manager._running
            if rid in self._by_id
        ]

    def _select_subset(self) -> Optional[List[int]]:
        """This tick's decode subset per the SLO scheduler (None = all)."""
        return self._scheduler.select(self._running_requests())

    def _dispatch(self, stats) -> None:
        """Forward one iteration's outcomes into the client streams."""
        now = time.perf_counter()
        for request_id in stats.preempted_ids:
            gwreq = self._by_id.get(request_id)
            if gwreq is None:
                continue
            gwreq.stalled = True
            _STALLS.inc()
            gwreq.stream.push(StreamEvent(kind="stall", reason="preempted"))
            TRACER.event("repro.gateway.stall", request=request_id,
                         reason="preempted")
        for request_id, tokens in stats.emissions.items():
            gwreq = self._by_id.get(request_id)
            if gwreq is None:
                continue
            if gwreq.stalled:
                gwreq.stalled = False
                gwreq.stream.push(StreamEvent(kind="resume"))
            if gwreq.first_token_at is None:
                gwreq.first_token_at = now
                _TTFT[gwreq.slo].observe(now - gwreq.submitted_at)
            else:
                _TBT[gwreq.slo].observe(now - gwreq.last_token_at)
            gwreq.last_token_at = now
            for token in tokens:
                gwreq.stream.push(StreamEvent(
                    kind="token", token=int(token), index=gwreq.emitted))
                gwreq.emitted += 1
        for request_id in stats.finished_ids:
            gwreq = self._by_id.pop(request_id, None)
            if gwreq is None:
                continue
            gwreq.stream.output = self.manager.output_for(request_id)
            gwreq.stream.push(StreamEvent(kind="done"))
            TRACER.event("repro.gateway.done", request=request_id,
                         tokens=gwreq.emitted)
        for request_id in stats.failed_ids:
            gwreq = self._by_id.pop(request_id, None)
            if gwreq is None:
                continue
            output = self.manager.output_for(request_id)
            gwreq.stream.output = output
            gwreq.stream.error = output.error
            gwreq.stream.push(StreamEvent(
                kind="failed", reason=output.error or "failed"))
            TRACER.event("repro.gateway.fail", request=request_id,
                         reason=output.error or "failed")
