"""Per-request decode sessions: thin adapters over the unified pipeline.

A session binds one :class:`~repro.serving.request.Request` to a
:class:`~repro.engine.pipeline.DecodeState` and a single-lane
:class:`~repro.engine.pipeline.DecodePipeline`; ``step()`` is one pipeline
tick.  The request managers interleave sessions at iteration granularity
(continuous batching) — either by stepping each session through its own
pipeline (per-request serving) or by ticking every session's state through
one shared pipeline with a fused backend (see
:class:`~repro.serving.manager.RequestManager`).
"""

from __future__ import annotations

from abc import ABC, abstractmethod
from typing import Callable, List, Optional

from repro.engine.generation import StepTrace
from repro.engine.pipeline import (
    DecodePipeline,
    DecodeState,
    IncrementalBackend,
    PerRequestBackend,
    VerificationBackend,
)
from repro.model.transformer import TransformerLM
from repro.serving.request import Request
from repro.speculate.speculator import Speculator
from repro.tree.token_tree import TokenTree
from repro.verify.result import VerificationResult


class DecodeSession(ABC):
    """State machine advancing one request by one LLM iteration per step.

    Args:
        request: The request being served.
        model: The LLM.
        cache_factory: Optional override for KV-cache allocation — e.g.
            ``pool.new_sequence`` to place this request's cache in a shared
            :class:`~repro.model.paged_cache.PagedKVPool`.  Defaults to a
            private contiguous cache.
        speculator_factory: Builds a fresh per-request speculator, or
            ``None`` for incremental decoding.
    """

    def __init__(self, request: Request, model: TransformerLM,
                 cache_factory: Callable = None,
                 speculator_factory: Optional[Callable[[], Speculator]] = None):
        self.request = request
        self.model = model
        self.state = DecodeState(
            model,
            request.prompt,
            request.config,
            speculator=speculator_factory() if speculator_factory else None,
            cache_factory=cache_factory,
        )
        self._pipeline = DecodePipeline(model, self._make_backend(model))

    @abstractmethod
    def _make_backend(self, model: TransformerLM) -> VerificationBackend:
        """The backend standalone ``step()`` calls verify through."""

    # -- legacy surface (delegates to the pipeline state) --------------------------

    @property
    def tokens(self) -> List[int]:
        return self.state.tokens

    @property
    def steps(self) -> List[StepTrace]:
        return self.state.steps

    @property
    def finished_by_eos(self) -> bool:
        return self.state.finished_by_eos

    @property
    def finished(self) -> bool:
        return self.state.finished

    @property
    def cache(self):
        """The session's KV cache (batched verifiers compact it)."""
        return self.state.cache

    @property
    def speculator(self):
        return self.state.speculator

    def step(self) -> List[int]:
        """One LLM decoding iteration; returns emitted tokens."""
        return self._pipeline.tick([self.state])[0].emitted

    def attach_injector(self, injector,
                        fallback_cooldown: Optional[int] = None) -> None:
        """Arm this session's standalone pipeline with a fault injector.

        Per-request serving has one pipeline per session, so the manager
        calls this at admission; fused serving instead arms the single
        shared pipeline.  Speculation/verification faults then degrade this
        session to incremental decoding for ``fallback_cooldown`` ticks.
        """
        self._pipeline.injector = injector
        if fallback_cooldown is not None:
            self._pipeline.fallback_cooldown = fallback_cooldown

    def attach_router(self, router) -> None:
        """Arm this session's standalone pipeline with a speculator router.

        Per-request serving has one pipeline per session (fused serving
        arms the one shared pipeline instead), so the manager calls this at
        admission; the pipeline then feeds the session's per-tick
        acceptance back through ``state.route``.
        """
        self._pipeline.router = router

    def release(self) -> None:
        """Free the session's cache resources (paged caches return their
        blocks to the pool; contiguous caches have nothing to do)."""
        self.state.release()


class IncrementalSession(DecodeSession):
    """One token per iteration (Algorithm 1 — the pipeline's degenerate
    one-node-tree case)."""

    def __init__(self, request: Request, model: TransformerLM,
                 cache_factory: Callable = None):
        super().__init__(request, model, cache_factory=cache_factory)

    def _make_backend(self, model: TransformerLM) -> VerificationBackend:
        return IncrementalBackend(model)


class SpeculativeSession(DecodeSession):
    """Tree-based speculate/verify per iteration (Algorithm 2).

    Args:
        request: The request being served.
        model: The LLM.
        speculator_factory: Builds a fresh :class:`Speculator` per session
            (speculators hold per-request SSM caches).
    """

    def __init__(
        self,
        request: Request,
        model: TransformerLM,
        speculator_factory: Callable[[], Speculator],
        cache_factory: Callable = None,
    ):
        super().__init__(request, model, cache_factory=cache_factory,
                         speculator_factory=speculator_factory)

    def _make_backend(self, model: TransformerLM) -> VerificationBackend:
        # Speculation and verification share the request's seeded RNG, so a
        # standalone session replays exactly like the offline engine.
        return PerRequestBackend(model)

    # -- two-phase interface (legacy surface of the fused managers) ----------------

    def prepare_step(self) -> Optional[TokenTree]:
        """Phase 1: speculate (and fit) this iteration's token tree.

        Returns ``None`` when the request cannot decode further (context
        exhausted); the session then reports ``finished`` and the manager
        retires it.
        """
        return self._pipeline.speculate(self.state)

    def commit_step(self, tree: TokenTree,
                    verification: VerificationResult) -> List[int]:
        """Phase 2: record the verification outcome and advance state."""
        return self._pipeline.commit(self.state, tree, verification)


def make_routed_factory(model: TransformerLM, pool, router,
                        cache_factory: Callable = None):
    """A session factory that pins a routed speculator per request at admit.

    The router decides once per request id; the decision is sticky, so a
    preempted request re-admitted through its resume view (same id) gets
    the same pool member back and replays its committed prefix under the
    identical draft distribution.  The assignment rides on
    ``session.state.route``, which the pipeline uses to feed the request's
    per-tick acceptance back to the router after each verify.

    Works for both serving modes: per-request managers additionally call
    :meth:`DecodeSession.attach_router` on the session, fused managers arm
    the shared pipeline via their ``router=`` argument.
    """

    def factory(request: Request) -> SpeculativeSession:
        assignment = router.route(request.request_id, request.prompt)
        session = SpeculativeSession(
            request, model,
            lambda: pool.make_speculator(assignment.member),
            cache_factory=cache_factory,
        )
        session.state.route = assignment
        return session

    return factory
