"""Per-request decode sessions: incremental and speculative state machines.

A session owns everything one request needs between scheduler iterations —
LLM KV cache, speculator caches, the pending token, the RNG — and exposes a
single ``step()`` that performs one LLM decoding iteration and returns the
tokens it emitted.  The request manager interleaves sessions at iteration
granularity (continuous batching).
"""

from __future__ import annotations

from abc import ABC, abstractmethod
from typing import Callable, List

import numpy as np

from repro.engine.generation import StepTrace
from repro.model.sampling import sample_token
from repro.model.transformer import TransformerLM
from repro.serving.request import Request
from repro.speculate.speculator import Speculator
from repro.verify.verifier import TokenTreeVerifier


class DecodeSession(ABC):
    """State machine advancing one request by one LLM iteration per step.

    Args:
        request: The request being served.
        model: The LLM.
        cache_factory: Optional override for KV-cache allocation — e.g.
            ``pool.new_sequence`` to place this request's cache in a shared
            :class:`~repro.model.paged_cache.PagedKVPool`.  Defaults to a
            private contiguous cache.
    """

    def __init__(self, request: Request, model: TransformerLM,
                 cache_factory: Callable = None):
        self.request = request
        self.model = model
        self.tokens: List[int] = []
        self.steps: List[StepTrace] = []
        self.finished_by_eos = False
        self._cache = (cache_factory or model.new_cache)()
        prompt = request.prompt
        if prompt.size > 1:
            model.prefill(prompt[:-1], self._cache)
        self._pending = int(prompt[-1])
        self._rng = np.random.default_rng(request.config.seed)

    @property
    def finished(self) -> bool:
        return (
            self.finished_by_eos
            or len(self.tokens) >= self.request.config.max_new_tokens
            or self._cache.length + 1 >= self._cache.capacity
        )

    def _emit(self, emitted: List[int]) -> List[int]:
        """Append tokens, honoring EOS and the token budget."""
        config = self.request.config
        eos = self.model.config.eos_token_id
        appended: List[int] = []
        for token in emitted:
            if len(self.tokens) >= config.max_new_tokens:
                break
            self.tokens.append(int(token))
            appended.append(int(token))
            if config.stop_on_eos and token == eos:
                self.finished_by_eos = True
                break
        return appended

    @abstractmethod
    def step(self) -> List[int]:
        """One LLM decoding iteration; returns emitted tokens."""


    def release(self) -> None:
        """Free the session's cache resources (paged caches return their
        blocks to the pool; contiguous caches have nothing to do)."""
        free = getattr(self._cache, "free", None)
        if callable(free):
            free()


class IncrementalSession(DecodeSession):
    """One token per iteration (Algorithm 1)."""

    def step(self) -> List[int]:
        if self.finished:
            return []
        logits = self.model.decode(self._pending, self._cache)
        token = sample_token(logits, self.request.config.sampling, self._rng)
        self.steps.append(
            StepTrace(
                llm_tokens_scored=1,
                tokens_emitted=1,
                prefix_len=self._cache.length - 1,
            )
        )
        self._pending = token
        return self._emit([token])


class SpeculativeSession(DecodeSession):
    """Tree-based speculate/verify per iteration (Algorithm 2).

    Args:
        request: The request being served.
        model: The LLM.
        speculator_factory: Builds a fresh :class:`Speculator` per session
            (speculators hold per-request SSM caches).
    """

    def __init__(
        self,
        request: Request,
        model: TransformerLM,
        speculator_factory: Callable[[], Speculator],
        cache_factory: Callable = None,
    ):
        super().__init__(request, model, cache_factory=cache_factory)
        self.speculator = speculator_factory()
        if request.prompt.size > 1:
            self.speculator.prefill(request.prompt[:-1])
        self._verifier = TokenTreeVerifier(
            model, sampling=request.config.sampling, rng=self._rng
        )

    def step(self) -> List[int]:
        if self.finished:
            return []
        tree = self.prepare_step()
        if tree is None:
            return []
        verification = self._verifier.verify_step(tree, self._cache)
        return self.commit_step(tree, verification)

    # -- two-phase interface (used by the batched manager) -----------------------

    def prepare_step(self):
        """Phase 1: speculate (and prune) this iteration's token tree.

        Returns ``None`` when the request cannot decode further (context
        exhausted).  The batched request manager calls this on every
        running session, verifies all trees in one fused pass, then calls
        :meth:`commit_step` per session.
        """
        tree = self.speculator.speculate(
            self._pending,
            stochastic=not self.request.config.sampling.greedy,
            rng=self._rng,
        )
        available = self._cache.capacity - self._cache.length
        max_depth = self.model.config.max_seq_len - 1 - self._cache.length
        if len(tree) > available or tree.max_depth() > max_depth:
            from repro.engine.tree_spec import _prune_to_size

            if available < 1 or max_depth < 0:
                return None
            tree = _prune_to_size(tree, available, max_depth=max_depth)
        return tree

    @property
    def cache(self):
        """The session's KV cache (the batched verifier compacts it)."""
        return self._cache

    def commit_step(self, tree, verification) -> List[int]:
        """Phase 2: record the verification outcome and advance state."""
        accepted = verification.accepted_tokens
        leaves = [i for i in range(len(tree)) if tree.is_leaf(i)]
        self.steps.append(
            StepTrace(
                llm_tokens_scored=len(tree),
                tokens_emitted=len(accepted),
                ssm_steps=self.speculator.speculation_latency_steps(),
                tree_size=len(tree),
                tree_depth=tree.max_depth(),
                tree_leaves=len(leaves),
                tree_path_tokens=sum(len(tree.path_to(i)) for i in leaves),
                prefix_len=self._cache.length - len(verification.accepted_nodes),
                num_rejections=verification.num_rejections,
            )
        )
        emitted = self._emit(accepted)
        if not self.finished:
            self.speculator.advance([self._pending] + accepted[:-1])
            self._pending = verification.bonus_token
        return emitted
