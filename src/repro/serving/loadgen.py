"""Concurrent async load generator for the serving gateway.

``repro loadgen`` drives a full gateway stack — toy LLM, fused
verification backend, shared KV arena, admission control — with *real
concurrent asyncio clients* spread across tenants and both SLO classes.
It is the acceptance harness for the gateway's steady-state properties:
admission rejects are counted and retried (never crash a client), the
queue stays bounded at the admission limit, and the per-class
``repro.gateway.ttft_seconds`` / ``tbt_seconds`` histograms populate.
"""

from __future__ import annotations

import asyncio
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

import numpy as np

from repro.engine.generation import GenerationConfig
from repro.obs import REGISTRY
from repro.serving.gateway import (
    AdmissionError,
    GatewayConfig,
    ServingGateway,
    SloClass,
    TenantConfig,
)


@dataclass(frozen=True)
class LoadgenSpec:
    """Parameters for one load-generation run.

    Attributes:
        clients: Concurrent async clients.  Client ``i`` belongs to tenant
            ``tenants[i % len(tenants)]``; the SLO class flips once per
            full tenant rotation, so every (tenant, class) pair sees
            traffic (see :func:`_client_plan`).
        requests_per_client: Sequential requests each client issues.
        dataset: Prompt source (:data:`repro.workloads.datasets.DATASET_NAMES`).
        max_new_tokens: Generation budget per request.
        batch: Scheduler batch slots (also sizes the KV arena).
        seed: Master seed (models and prompts).
        alignment: SSM/LLM alignment of the toy coupled pair.
        tenants: Tenant names; first tenant gets weight 2, the rest 1.
        max_queue_depth: Per-tenant admission queue bound — overflow
            submissions are rejected and retried by the client.
        rate_per_tick: Optional per-tenant admission rate limit.
        fault_rate: Per-site fault-injection probability (chaos mode).
        fault_seed: Injector seed; defaults to ``seed + 9973``.
        max_resubmits: Client-side retries after a ``queue_full`` reject.
        retry_delay: Client backoff between resubmits (seconds).
    """

    clients: int = 8
    requests_per_client: int = 2
    dataset: str = "Alpaca"
    max_new_tokens: int = 8
    batch: int = 4
    seed: int = 7
    alignment: float = 0.88
    tenants: Tuple[str, ...] = ("alpha", "beta")
    max_queue_depth: int = 4
    rate_per_tick: Optional[float] = None
    fault_rate: float = 0.0
    fault_seed: Optional[int] = None
    max_resubmits: int = 200
    retry_delay: float = 0.002

    def __post_init__(self) -> None:
        if self.clients < 1:
            raise ValueError("clients must be >= 1")
        if self.requests_per_client < 1:
            raise ValueError("requests_per_client must be >= 1")
        if not self.tenants:
            raise ValueError("at least one tenant is required")


@dataclass
class ClientStats:
    """One client's tally."""

    client_id: int
    tenant: str
    slo: SloClass
    completed: int = 0
    failed: int = 0
    dropped: int = 0
    rejections: int = 0
    stalls: int = 0
    tokens: int = 0


@dataclass
class LoadgenReport:
    """Aggregate outcome of one load-generation run.

    ``ttft_counts`` / ``tbt_counts`` are per-SLO-class histogram
    observation counts *from this run* (deltas, not registry totals).
    """

    spec: LoadgenSpec
    clients: List[ClientStats] = field(default_factory=list)
    peak_queue_depth: int = 0
    queue_bound: int = 0
    final_queue_depth: int = 0
    ticks: int = 0
    ttft_counts: Dict[str, int] = field(default_factory=dict)
    tbt_counts: Dict[str, int] = field(default_factory=dict)

    @property
    def completed(self) -> int:
        return sum(c.completed for c in self.clients)

    @property
    def failed(self) -> int:
        return sum(c.failed for c in self.clients)

    @property
    def dropped(self) -> int:
        return sum(c.dropped for c in self.clients)

    @property
    def rejections(self) -> int:
        return sum(c.rejections for c in self.clients)

    @property
    def stalls(self) -> int:
        return sum(c.stalls for c in self.clients)

    @property
    def tokens(self) -> int:
        return sum(c.tokens for c in self.clients)

    def render(self) -> str:
        """Human-readable run report (the ``repro loadgen`` output)."""
        spec = self.spec
        lines = [
            "gateway load generation",
            f"  clients            : {spec.clients} "
            f"({len(spec.tenants)} tenants, 2 SLO classes)",
            f"  requests           : {spec.clients * spec.requests_per_client}",
            f"  completed          : {self.completed}",
            f"  failed             : {self.failed}",
            f"  dropped            : {self.dropped}",
            f"  admission rejects  : {self.rejections}",
            f"  mid-stream stalls  : {self.stalls}",
            f"  tokens streamed    : {self.tokens}",
            f"  gateway ticks      : {self.ticks}",
            f"  peak queue depth   : {self.peak_queue_depth} "
            f"(bound {self.queue_bound})",
            f"  final queue depth  : {self.final_queue_depth}",
        ]
        for slo in SloClass:
            lines.append(
                f"  ttft samples {slo.value:<11}: "
                f"{self.ttft_counts.get(slo.value, 0)}")
        for slo in SloClass:
            lines.append(
                f"  tbt samples {slo.value:<12}: "
                f"{self.tbt_counts.get(slo.value, 0)}")
        return "\n".join(lines)


def build_gateway_stack(spec: LoadgenSpec) -> ServingGateway:
    """A full serving stack behind one gateway (toy substrate).

    Mirrors :func:`repro.obs.workload.run_observed_workload`'s
    construction — toy LLM + coupled SSM, fused backend over a shared KV
    arena — but hands the manager to a :class:`ServingGateway` instead of
    the replay driver, with per-tenant admission policy from ``spec``.
    """
    from repro.engine.pipeline import FusedBackend
    from repro.model.arena import BatchArena
    from repro.obs.workload import _build_toy_pair
    from repro.serving.manager import RequestManager
    from repro.serving.session import SpeculativeSession
    from repro.speculate.expansion import ExpansionConfig
    from repro.speculate.speculator import Speculator

    llm, ssm_factory = _build_toy_pair(spec.alignment, spec.seed)
    arena = BatchArena(llm.config, max_requests=spec.batch)

    def session_factory(request):
        return SpeculativeSession(
            request, llm,
            lambda: Speculator([ssm_factory()],
                               ExpansionConfig.paper_default()),
            cache_factory=arena.new_sequence,
        )

    injector = None
    if spec.fault_rate > 0:
        from repro.faults import FaultInjector

        fault_seed = (spec.fault_seed if spec.fault_seed is not None
                      else spec.seed + 9973)
        injector = FaultInjector(rate=spec.fault_rate, seed=fault_seed)
    manager = RequestManager(
        session_factory,
        max_batch_size=spec.batch,
        backend=FusedBackend(llm, rng=np.random.default_rng(spec.seed)),
        injector=injector,
    )
    tenants = {
        name: TenantConfig(
            name=name,
            weight=2 if i == 0 else 1,
            max_queue_depth=spec.max_queue_depth,
            rate_per_tick=spec.rate_per_tick,
        )
        for i, name in enumerate(spec.tenants)
    }
    return ServingGateway(manager, GatewayConfig(tenants=tenants))


def _client_plan(spec: LoadgenSpec) -> List[ClientStats]:
    """Deterministic (tenant, SLO) assignment for each client.

    Tenants rotate per client while the SLO class flips once per full
    tenant rotation, so the two dimensions stay decorrelated and every
    (tenant, class) pair sees traffic once ``clients >= 2 * len(tenants)``.
    """
    return [
        ClientStats(
            client_id=i,
            tenant=spec.tenants[i % len(spec.tenants)],
            slo=(SloClass.INTERACTIVE
                 if (i // len(spec.tenants)) % 2 == 0 else SloClass.BATCH),
        )
        for i in range(spec.clients)
    ]


async def _run_client(gateway: ServingGateway, spec: LoadgenSpec,
                      stats: ClientStats,
                      prompts: List[List[int]]) -> None:
    """One client: submit sequentially, retry rejects, stream each reply."""
    config = GenerationConfig(max_new_tokens=spec.max_new_tokens,
                              stop_on_eos=False)
    for prompt in prompts:
        stream = None
        for _ in range(spec.max_resubmits + 1):
            try:
                stream = await gateway.submit(
                    prompt, config, tenant=stats.tenant, slo=stats.slo)
                break
            except AdmissionError as exc:
                if exc.reason != "queue_full":
                    raise
                stats.rejections += 1
                await asyncio.sleep(spec.retry_delay)
        if stream is None:
            stats.dropped += 1
            continue
        failed = False
        async for event in stream:
            if event.kind == "token":
                stats.tokens += 1
            elif event.kind == "stall":
                stats.stalls += 1
            elif event.kind == "failed":
                failed = True
        if failed:
            stats.failed += 1
        else:
            stats.completed += 1


def _histogram_counts(stem: str) -> Dict[str, int]:
    return {
        slo.value: getattr(
            REGISTRY.get(f"repro.gateway.{stem}.{slo.value}"), "count", 0)
        for slo in SloClass
    }


async def run_loadgen(spec: Optional[LoadgenSpec] = None) -> LoadgenReport:
    """Run the load generator; returns the aggregate report."""
    from repro.workloads.datasets import make_dataset

    spec = spec or LoadgenSpec()
    gateway = build_gateway_stack(spec)
    vocab = gateway.manager.backend.model.config.vocab_size
    dataset = make_dataset(spec.dataset, vocab_size=vocab)
    clients = _client_plan(spec)
    # Pre-sample prompts so dataset RNG order does not depend on task
    # interleaving (the run stays seed-determined up to timing).
    prompts = [
        [
            [int(t) for t in dataset.sample_prompt(max_len=12)]
            for _ in range(spec.requests_per_client)
        ]
        for _ in clients
    ]
    ttft_before = _histogram_counts("ttft_seconds")
    tbt_before = _histogram_counts("tbt_seconds")
    await gateway.start()
    try:
        await asyncio.gather(*[
            _run_client(gateway, spec, stats, prompts[i])
            for i, stats in enumerate(clients)
        ])
    finally:
        await gateway.stop()
    ttft_after = _histogram_counts("ttft_seconds")
    tbt_after = _histogram_counts("tbt_seconds")
    return LoadgenReport(
        spec=spec,
        clients=clients,
        peak_queue_depth=gateway.peak_queue_depth,
        queue_bound=spec.max_queue_depth * len(spec.tenants),
        final_queue_depth=gateway.queue_depth,
        ticks=gateway._loop_driver.ticks,
        ttft_counts={
            k: ttft_after[k] - ttft_before.get(k, 0) for k in ttft_after},
        tbt_counts={
            k: tbt_after[k] - tbt_before.get(k, 0) for k in tbt_after},
    )
