"""Statistics helpers used by tests, benchmarks and reports."""

from __future__ import annotations

from dataclasses import dataclass
from typing import Sequence

import numpy as np


@dataclass(frozen=True)
class SummaryStats:
    """Five-number-ish summary of a sample."""

    mean: float
    std: float
    minimum: float
    p50: float
    p95: float
    maximum: float
    count: int


def summarize(values: Sequence[float]) -> SummaryStats:
    """Summary statistics of ``values``."""
    arr = np.asarray(list(values), dtype=np.float64)
    if arr.size == 0:
        raise ValueError("cannot summarize an empty sample")
    return SummaryStats(
        mean=float(arr.mean()),
        std=float(arr.std()),
        minimum=float(arr.min()),
        p50=float(np.percentile(arr, 50)),
        p95=float(np.percentile(arr, 95)),
        maximum=float(arr.max()),
        count=int(arr.size),
    )


@dataclass(frozen=True)
class Cdf:
    """An empirical CDF: ``P(X <= xs[i]) = ps[i]`` (Figure 9's plot data)."""

    xs: np.ndarray
    ps: np.ndarray

    def quantile(self, p: float) -> float:
        """Smallest x with CDF(x) >= p."""
        if not 0 <= p <= 1:
            raise ValueError(f"p must be in [0, 1], got {p}")
        idx = int(np.searchsorted(self.ps, p))
        idx = min(idx, len(self.xs) - 1)
        return float(self.xs[idx])

    def at(self, x: float) -> float:
        """CDF evaluated at ``x``."""
        idx = int(np.searchsorted(self.xs, x, side="right"))
        if idx == 0:
            return 0.0
        return float(self.ps[idx - 1])


def empirical_cdf(values: Sequence[float]) -> Cdf:
    """Empirical CDF of ``values``."""
    arr = np.sort(np.asarray(list(values), dtype=np.float64))
    if arr.size == 0:
        raise ValueError("cannot build a CDF from an empty sample")
    ps = np.arange(1, arr.size + 1, dtype=np.float64) / arr.size
    return Cdf(xs=arr, ps=ps)


def speedup(baseline: float, improved: float) -> float:
    """``baseline / improved`` — how many times faster the improved system is."""
    if improved <= 0:
        raise ValueError("improved latency must be positive")
    return baseline / improved


def total_variation_distance(p: np.ndarray, q: np.ndarray) -> float:
    """TV distance between two distributions (distribution-equality tests)."""
    p = np.asarray(p, dtype=np.float64)
    q = np.asarray(q, dtype=np.float64)
    if p.shape != q.shape:
        raise ValueError(f"shape mismatch: {p.shape} vs {q.shape}")
    return float(0.5 * np.abs(p - q).sum())
