"""Metrics helpers: CDFs, summary statistics, speedups."""

from repro.metrics.stats import (
    Cdf,
    SummaryStats,
    empirical_cdf,
    speedup,
    summarize,
    total_variation_distance,
)

__all__ = [
    "Cdf",
    "SummaryStats",
    "empirical_cdf",
    "speedup",
    "summarize",
    "total_variation_distance",
]
