"""Acceptance-rate analytics for speculative decoding.

Speculative decoding theory (Leviathan et al.) gives closed forms for
sequence speculation with per-token acceptance rate ``alpha``:

* P(accepting exactly k of L speculated tokens) = ``alpha^k (1 - alpha)``
  for ``k < L`` and ``alpha^L`` for ``k = L``;
* expected emitted tokens per step (including the bonus token) =
  ``(1 - alpha^(L+1)) / (1 - alpha)``.

These utilities estimate ``alpha`` from measured traces and predict
tokens-per-step for candidate speculation lengths — the planning math
behind choosing the paper's depth-8 configuration — plus a first-order
extension for trees (width ``w`` boosts the per-step success probability
from ``alpha`` to ``1 - (1 - alpha)^w`` under an independence
approximation).
"""

from __future__ import annotations

from typing import Sequence

import numpy as np

from repro.engine.generation import GenerationResult


def expected_tokens_per_step(alpha: float, depth: int) -> float:
    """Expected emitted tokens per LLM step for sequence speculation.

    Args:
        alpha: Per-token acceptance probability, in [0, 1].
        depth: Speculation length L.
    """
    if not 0 <= alpha <= 1:
        raise ValueError(f"alpha must be in [0, 1], got {alpha}")
    if depth < 0:
        raise ValueError("depth must be >= 0")
    if alpha == 1.0:
        return float(depth + 1)
    return float((1 - alpha ** (depth + 1)) / (1 - alpha))


def acceptance_distribution(alpha: float, depth: int) -> np.ndarray:
    """P(exactly k accepted speculated tokens), k = 0..depth."""
    if not 0 <= alpha <= 1:
        raise ValueError("alpha must be in [0, 1]")
    probs = np.array(
        [alpha**k * (1 - alpha) for k in range(depth)] + [alpha**depth]
    )
    return probs


def effective_tree_alpha(alpha: float, width: int) -> float:
    """Per-step success rate of a width-``w`` candidate set.

    Independence approximation: each of ``w`` distinct candidates succeeds
    with marginal probability ``alpha`` — the tree succeeds if any does.
    (Real candidates are the SSM's top-w, so this overestimates slightly;
    Table 1 measures the true values.)
    """
    if width < 1:
        raise ValueError("width must be >= 1")
    if not 0 <= alpha <= 1:
        raise ValueError("alpha must be in [0, 1]")
    return float(1 - (1 - alpha) ** width)


def estimate_alpha(results: Sequence[GenerationResult]) -> float:
    """Estimate the per-token acceptance rate from engine traces.

    Maximum-likelihood estimate under the geometric acceptance model: each
    verification step accepting ``k`` of ``L`` speculated tokens contributes
    ``k`` Bernoulli successes plus one failure when ``k < L`` (the step
    that rejected) and no failure when the whole speculation was accepted.
    ``alpha_hat = successes / trials``.
    """
    successes = 0
    trials = 0
    for result in results:
        for step in result.steps:
            if step.tree_depth == 0:
                continue
            accepted = step.tokens_emitted - 1
            successes += accepted
            trials += accepted
            if accepted < step.tree_depth:
                trials += 1  # the rejected position
    if trials == 0:
        raise ValueError("traces contain no speculation steps")
    return successes / trials


def predict_speedup(
    alpha: float,
    depth: int,
    ssm_cost_ratio: float = 0.02,
) -> float:
    """Per-token speedup of sequence speculation over incremental decoding.

    Args:
        alpha: Per-token acceptance rate.
        depth: Speculation length.
        ssm_cost_ratio: SSM step cost / LLM step cost (the paper's SSMs
            are 100-1000x smaller, so ~0.01-0.05).

    Returns:
        Expected speedup assuming verification costs one LLM step
        (memory-bound regime) and speculation costs ``depth`` SSM steps.
    """
    if ssm_cost_ratio < 0:
        raise ValueError("ssm_cost_ratio must be >= 0")
    tokens = expected_tokens_per_step(alpha, depth)
    step_cost = 1.0 + depth * ssm_cost_ratio
    return tokens / step_cost


def best_depth(alpha: float, ssm_cost_ratio: float = 0.02,
               max_depth: int = 32) -> int:
    """Speculation length maximizing :func:`predict_speedup`."""
    if max_depth < 1:
        raise ValueError("max_depth must be >= 1")
    return max(
        range(1, max_depth + 1),
        key=lambda depth: predict_speedup(alpha, depth, ssm_cost_ratio),
    )
