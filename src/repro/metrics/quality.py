"""Output-quality metrics: perplexity and distributional equivalence.

The paper claims SpecInfer "preserves the same generative performance" —
the strongest form is token-identity (greedy) or distribution-identity
(stochastic, Theorem 4.2).  These utilities measure quality directly so
experiments can *show* equivalence rather than assert it:

* :func:`sequence_log_likelihood` / :func:`perplexity` score any emitted
  sequence under any model,
* :func:`compare_outputs` summarizes two engines' outputs on the same
  prompts (exact-match rate, per-model perplexities).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Sequence

import numpy as np

from repro.model.layers import stable_softmax
from repro.model.transformer import TransformerLM


def sequence_log_likelihood(
    model: TransformerLM,
    prompt: Sequence[int],
    continuation: Sequence[int],
) -> float:
    """Log-likelihood of ``continuation`` given ``prompt`` under ``model``."""
    prompt = list(prompt)
    continuation = list(continuation)
    if not prompt:
        raise ValueError("prompt must be non-empty")
    if not continuation:
        raise ValueError("continuation must be non-empty")
    cache = model.new_cache()
    if len(prompt) > 1:
        model.prefill(np.asarray(prompt[:-1]), cache)
    pending = int(prompt[-1])
    total = 0.0
    for token in continuation:
        probs = stable_softmax(model.decode(pending, cache))
        total += float(np.log(max(float(probs[token]), 1e-300)))
        pending = int(token)
    return total


def perplexity(
    model: TransformerLM,
    prompt: Sequence[int],
    continuation: Sequence[int],
) -> float:
    """Perplexity of ``continuation`` given ``prompt``: ``exp(-ll / n)``."""
    ll = sequence_log_likelihood(model, prompt, continuation)
    return float(np.exp(-ll / len(list(continuation))))


@dataclass(frozen=True)
class OutputComparison:
    """Quality comparison of two engines on the same prompt set.

    Attributes:
        exact_match_rate: Fraction of prompts with identical outputs.
        mean_perplexity_a: Mean perplexity of engine A's outputs.
        mean_perplexity_b: Mean perplexity of engine B's outputs.
        num_prompts: Prompts compared.
    """

    exact_match_rate: float
    mean_perplexity_a: float
    mean_perplexity_b: float
    num_prompts: int

    @property
    def perplexity_gap(self) -> float:
        """Relative perplexity difference (0 = identical quality)."""
        denom = max(self.mean_perplexity_a, 1e-12)
        return abs(self.mean_perplexity_a - self.mean_perplexity_b) / denom


def compare_outputs(
    model: TransformerLM,
    prompts: Sequence[Sequence[int]],
    outputs_a: Sequence[Sequence[int]],
    outputs_b: Sequence[Sequence[int]],
) -> OutputComparison:
    """Summarize two engines' outputs on shared prompts.

    Args:
        model: The reference model used for perplexity scoring (normally
            the LLM both engines served).
        prompts: The shared prompts.
        outputs_a: Engine A's generated tokens per prompt.
        outputs_b: Engine B's generated tokens per prompt.
    """
    if not (len(prompts) == len(outputs_a) == len(outputs_b)):
        raise ValueError("prompts and outputs must be parallel sequences")
    if not prompts:
        raise ValueError("no prompts to compare")
    matches = 0
    ppl_a: List[float] = []
    ppl_b: List[float] = []
    for prompt, a, b in zip(prompts, outputs_a, outputs_b):
        matches += int(list(a) == list(b))
        ppl_a.append(perplexity(model, prompt, a))
        ppl_b.append(perplexity(model, prompt, b))
    return OutputComparison(
        exact_match_rate=matches / len(prompts),
        mean_perplexity_a=float(np.mean(ppl_a)),
        mean_perplexity_b=float(np.mean(ppl_b)),
        num_prompts=len(prompts),
    )
