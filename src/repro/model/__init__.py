"""NumPy transformer substrate used by the SpecInfer reproduction.

This package implements, from scratch, everything the paper assumes from a
deep-learning framework:

* :mod:`repro.model.config` -- architecture hyper-parameters,
* :mod:`repro.model.parameters` -- named parameter store with init/IO,
* :mod:`repro.model.layers` -- linear / LayerNorm / embedding / GELU primitives
  with manual backward passes,
* :mod:`repro.model.attention` -- multi-head attention accepting arbitrary
  additive masks (the hook tree attention plugs into),
* :mod:`repro.model.kv_cache` -- per-layer key/value cache with rollback,
* :mod:`repro.model.arena` -- shared per-batch KV slab; request caches are
  zero-copy views (the block-sparse fused batch path reads straight from it),
* :mod:`repro.model.perf` -- op counters (GEMM FLOPs, copied bytes, mask
  cells) asserted by the perf-smoke tests,
* :mod:`repro.model.transformer` -- the decoder-only language model with
  prefill, incremental decode and tree-parallel decode entry points,
* :mod:`repro.model.sampling` -- greedy / temperature / top-k / top-p sampling,
* :mod:`repro.model.trainer` -- cross-entropy training loop (Adam) used for
  distillation and boost-tuning,
* :mod:`repro.model.coupled` -- the logit-coupled SSM family with a
  controllable alignment knob (see DESIGN.md substitution table).
"""

from repro.model.config import ModelConfig
from repro.model.parameters import ParameterStore
from repro.model.kv_cache import KVCache
from repro.model.arena import ArenaKVCache, BatchArena
from repro.model.paged_cache import PagedKVPool, PagedSequenceCache
from repro.model.transformer import TransformerLM
from repro.model.coupled import CoupledSSM
from repro.model.sampling import (
    SamplingConfig,
    greedy_token,
    sample_token,
    softmax,
    top_k_filter,
    top_p_filter,
)
from repro.model.trainer import AdamOptimizer, Trainer, TrainingConfig

__all__ = [
    "ModelConfig",
    "ParameterStore",
    "KVCache",
    "ArenaKVCache",
    "BatchArena",
    "PagedKVPool",
    "PagedSequenceCache",
    "TransformerLM",
    "CoupledSSM",
    "SamplingConfig",
    "greedy_token",
    "sample_token",
    "softmax",
    "top_k_filter",
    "top_p_filter",
    "AdamOptimizer",
    "Trainer",
    "TrainingConfig",
]
