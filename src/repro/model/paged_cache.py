"""Paged KV-cache pool (vLLM-style block allocation).

The paper's comparison systems (vLLM in particular) manage KV memory as
fixed-size blocks assigned to sequences through block tables, which removes
per-request contiguous reservations and lets many requests share one pool.
This module provides that substrate:

* :class:`PagedKVPool` owns the backing storage — per layer, a
  ``(num_blocks, block_size, heads, d_head)`` tensor pair plus a free list;
* :class:`PagedSequenceCache` is one sequence's view: a block table plus a
  length, exposing the *same* interface as :class:`~repro.model.kv_cache.KVCache`
  (``layers[i].append/view``, ``truncate``, ``keep_rows``, snapshots), so
  every engine, verifier and speculator in this repository runs unmodified
  on paged storage — including tree-parallel decoding with path compaction.

Reads gather blocks into a contiguous array (the NumPy analogue of paged
attention's block-indexed loads).
"""

from __future__ import annotations

from typing import List, Sequence, Tuple

import numpy as np

from repro.analysis.sanitizer import tensor_contract
from repro.model.config import ModelConfig


class PagedKVPool:
    """Shared block pool for the KV caches of many sequences.

    Args:
        config: Model architecture (defines per-token KV shape).
        num_blocks: Blocks in the pool (per layer).
        block_size: Tokens per block.
    """

    def __init__(self, config: ModelConfig, num_blocks: int,
                 block_size: int = 16):
        if num_blocks < 1:
            raise ValueError("num_blocks must be >= 1")
        if block_size < 1:
            raise ValueError("block_size must be >= 1")
        self.config = config
        self.num_blocks = num_blocks
        self.block_size = block_size
        shape = (num_blocks, block_size, config.n_heads, config.d_head)
        self._keys = [
            np.zeros(shape, dtype=config.dtype) for _ in range(config.n_layers)
        ]
        self._values = [
            np.zeros(shape, dtype=config.dtype) for _ in range(config.n_layers)
        ]
        self._free: List[int] = list(range(num_blocks))[::-1]

    # -- allocation ---------------------------------------------------------------

    @property
    def free_blocks(self) -> int:
        return len(self._free)

    @property
    def used_blocks(self) -> int:
        return self.num_blocks - len(self._free)

    def allocate_block(self) -> int:
        """Take one block from the free list."""
        if not self._free:
            raise MemoryError("paged KV pool exhausted")
        return self._free.pop()

    def release_blocks(self, blocks: Sequence[int]) -> None:
        """Return blocks to the free list."""
        for block in blocks:
            if not 0 <= block < self.num_blocks:
                raise ValueError(f"invalid block id {block}")
            if block in self._free:
                raise ValueError(f"double free of block {block}")
            self._free.append(block)

    def new_sequence(self, capacity: int = 0) -> "PagedSequenceCache":
        """A fresh sequence cache over this pool."""
        return PagedSequenceCache(self, capacity=capacity)

    def utilization(self) -> float:
        """Fraction of pool blocks currently allocated."""
        return self.used_blocks / self.num_blocks


class _PagedLayerView:
    """Adapter giving one (sequence, layer) the ``LayerKV`` interface."""

    def __init__(self, cache: "PagedSequenceCache", layer: int):
        self._cache = cache
        self._layer = layer

    @property
    def length(self) -> int:
        return self._cache.length

    @property
    def capacity(self) -> int:
        return self._cache.capacity

    @tensor_contract(keys={"ndim": 3}, values={"ndim": 3})
    def append(self, keys: np.ndarray, values: np.ndarray) -> None:
        self._cache._append_layer(self._layer, keys, values)

    def view(self) -> Tuple[np.ndarray, np.ndarray]:
        return self._cache._view_layer(self._layer)

    def truncate(self, length: int) -> None:
        # Length bookkeeping is sequence-wide; KVCache.truncate calls each
        # layer, so only the last layer's call commits the new length.
        self._cache._truncate_layer(self._layer, length)

    def keep_rows(self, base: int, rows: Sequence[int]) -> None:
        self._cache._keep_rows_layer(self._layer, base, rows)


class PagedSequenceCache:
    """One sequence's KV cache backed by pool blocks.

    Drop-in replacement for :class:`~repro.model.kv_cache.KVCache`: exposes
    ``layers``, ``length``, ``capacity``, ``truncate``, ``keep_rows``,
    ``snapshot``/``restore`` and ``free`` (which returns the blocks).
    """

    def __init__(self, pool: PagedKVPool, capacity: int = 0):
        self.pool = pool
        self._capacity = capacity or pool.config.max_seq_len
        if self._capacity > pool.config.max_seq_len:
            raise ValueError(
                f"capacity {self._capacity} exceeds max_seq_len "
                f"{pool.config.max_seq_len}"
            )
        self._block_table: List[int] = []
        self._length = 0
        self._lengths_per_layer = [0] * pool.config.n_layers
        self.layers = [
            _PagedLayerView(self, i) for i in range(pool.config.n_layers)
        ]

    # -- KVCache-compatible surface ---------------------------------------------------

    @property
    def length(self) -> int:
        return self._length

    @property
    def capacity(self) -> int:
        return self._capacity

    @property
    def block_table(self) -> Tuple[int, ...]:
        return tuple(self._block_table)

    def snapshot(self) -> int:
        return self._length

    def restore(self, snapshot: int) -> None:
        self.truncate(snapshot)

    def truncate(self, length: int) -> None:
        if not 0 <= length <= self._length:
            raise ValueError(
                f"cannot truncate to {length}; current length {self._length}"
            )
        self._set_length(length)

    def keep_rows(self, base: int, rows: Sequence[int]) -> None:
        for layer in range(self.pool.config.n_layers):
            self._keep_rows_layer(layer, base, rows)

    def free(self) -> None:
        """Release every block back to the pool (request retirement)."""
        self.pool.release_blocks(self._block_table)
        self._block_table = []
        self._length = 0
        self._lengths_per_layer = [0] * self.pool.config.n_layers

    # -- internals ------------------------------------------------------------------

    def _slot(self, position: int) -> Tuple[int, int]:
        """(block id, offset) for an absolute token position."""
        block_idx, offset = divmod(position, self.pool.block_size)
        return self._block_table[block_idx], offset

    def _ensure_blocks(self, length: int) -> None:
        needed = -(-length // self.pool.block_size)  # ceil division
        while len(self._block_table) < needed:
            self._block_table.append(self.pool.allocate_block())

    def _set_length(self, length: int) -> None:
        """Commit a new sequence length, releasing now-unused blocks."""
        self._length = length
        self._lengths_per_layer = [length] * self.pool.config.n_layers
        needed = -(-length // self.pool.block_size)
        if len(self._block_table) > needed:
            self.pool.release_blocks(self._block_table[needed:])
            del self._block_table[needed:]

    def _append_layer(self, layer: int, keys: np.ndarray,
                      values: np.ndarray) -> None:
        n = keys.shape[0]
        start = self._lengths_per_layer[layer]
        if start + n > self._capacity:
            raise ValueError(
                f"paged cache overflow: length {start} + {n} exceeds "
                f"capacity {self._capacity}"
            )
        self._ensure_blocks(start + n)
        for i in range(n):
            block, offset = self._slot(start + i)
            self.pool._keys[layer][block, offset] = keys[i]
            self.pool._values[layer][block, offset] = values[i]
        self._lengths_per_layer[layer] = start + n
        # Sequence length follows the furthest layer (all layers advance in
        # lock-step during a forward pass; the last layer commits).
        self._length = max(self._length, min(self._lengths_per_layer))

    def _gather(self, layer: int, positions: np.ndarray,
                source: List[np.ndarray]) -> np.ndarray:
        blocks = np.array(
            [self._slot(int(p))[0] for p in positions], dtype=np.intp
        )
        offsets = np.array(
            [self._slot(int(p))[1] for p in positions], dtype=np.intp
        )
        return source[layer][blocks, offsets]

    def _view_layer(self, layer: int) -> Tuple[np.ndarray, np.ndarray]:
        n = self._lengths_per_layer[layer]
        positions = np.arange(n)
        return (
            self._gather(layer, positions, self.pool._keys),
            self._gather(layer, positions, self.pool._values),
        )

    def _truncate_layer(self, layer: int, length: int) -> None:
        if not 0 <= length <= self._lengths_per_layer[layer]:
            raise ValueError(
                f"cannot truncate layer {layer} to {length}"
            )
        self._lengths_per_layer[layer] = length
        if all(l == length for l in self._lengths_per_layer):
            self._set_length(length)

    def _keep_rows_layer(self, layer: int, base: int,
                         rows: Sequence[int]) -> None:
        rows = list(rows)
        region = self._lengths_per_layer[layer] - base
        for r in rows:
            if not 0 <= r < region:
                raise ValueError(
                    f"row {r} out of range for region of size {region}"
                )
        src_positions = np.array([base + r for r in rows], dtype=np.intp)
        kept_k = self._gather(layer, src_positions, self.pool._keys)
        kept_v = self._gather(layer, src_positions, self.pool._values)
        for i in range(len(rows)):
            block, offset = self._slot(base + i)
            self.pool._keys[layer][block, offset] = kept_k[i]
            self.pool._values[layer][block, offset] = kept_v[i]
        self._truncate_layer(layer, base + len(rows))
