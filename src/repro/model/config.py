"""Architecture configuration for the decoder-only transformer substrate.

The paper serves LLaMA-7B/65B and OPT-13B/30B as "LLMs" and LLaMA-68M /
OPT-125M as "small speculative models" (SSMs).  This reproduction scales the
architectures down so they run in NumPy, but keeps the *ratios* the paper
relies on: an SSM is 100-1000x smaller than its LLM, shares the vocabulary,
and uses the same decoder-only architecture.
"""

from __future__ import annotations

import dataclasses
from dataclasses import dataclass


@dataclass(frozen=True)
class ModelConfig:
    """Hyper-parameters of a decoder-only transformer language model.

    Attributes:
        vocab_size: Number of tokens in the (shared) vocabulary.
        d_model: Residual-stream width.
        n_layers: Number of transformer blocks.
        n_heads: Number of attention heads; must divide ``d_model``.
        d_ff: Hidden width of the position-wise MLP (defaults to 4x d_model).
        max_seq_len: Maximum sequence length (bounds positional embeddings
            and KV-cache capacity).
        eos_token_id: Token id that terminates generation.
        dtype: NumPy dtype name used for parameters and activations.
        name: Human-readable model name used in logs and reports.
        position_encoding: ``"learned"`` (GPT/OPT-style learned absolute
            embeddings) or ``"rope"`` (LLaMA-style rotary embeddings applied
            to queries/keys).  Tree-parallel decoding works with both: tree
            tokens carry depth-based positions either way.
    """

    vocab_size: int = 256
    d_model: int = 64
    n_layers: int = 2
    n_heads: int = 4
    d_ff: int = 0
    max_seq_len: int = 256
    eos_token_id: int = 0
    dtype: str = "float64"
    name: str = "transformer-lm"
    position_encoding: str = "learned"

    def __post_init__(self) -> None:
        if self.d_ff == 0:
            object.__setattr__(self, "d_ff", 4 * self.d_model)
        if self.vocab_size < 2:
            raise ValueError(f"vocab_size must be >= 2, got {self.vocab_size}")
        if self.d_model % self.n_heads != 0:
            raise ValueError(
                f"d_model ({self.d_model}) must be divisible by "
                f"n_heads ({self.n_heads})"
            )
        if self.n_layers < 1:
            raise ValueError(f"n_layers must be >= 1, got {self.n_layers}")
        if self.max_seq_len < 1:
            raise ValueError(f"max_seq_len must be >= 1, got {self.max_seq_len}")
        if not 0 <= self.eos_token_id < self.vocab_size:
            raise ValueError(
                f"eos_token_id ({self.eos_token_id}) out of range for "
                f"vocab_size {self.vocab_size}"
            )
        if self.position_encoding not in ("learned", "rope"):
            raise ValueError(
                f"position_encoding must be 'learned' or 'rope', got "
                f"{self.position_encoding!r}"
            )
        if self.position_encoding == "rope" and self.d_head % 2 != 0:
            raise ValueError(
                f"rotary embeddings need an even head dim, got {self.d_head}"
            )

    @property
    def d_head(self) -> int:
        """Per-head dimensionality."""
        return self.d_model // self.n_heads

    def num_parameters(self) -> int:
        """Exact parameter count for this architecture.

        Used by the cluster cost model to derive memory traffic per decoding
        step (the dominant term for LLM inference, per paper section 2).
        """
        embed = self.vocab_size * self.d_model
        if self.position_encoding == "learned":
            embed += self.max_seq_len * self.d_model
        per_layer = (
            4 * self.d_model * self.d_model  # Wq, Wk, Wv, Wo
            + 4 * self.d_model  # attention biases folded into q,k,v,o
            + 2 * self.d_model * self.d_ff  # MLP up + down
            + self.d_ff
            + self.d_model  # MLP biases
            + 4 * self.d_model  # two LayerNorms (scale + bias)
        )
        final_ln = 2 * self.d_model
        lm_head = self.d_model * self.vocab_size
        return embed + self.n_layers * per_layer + final_ln + lm_head

    def scaled(self, **overrides: object) -> "ModelConfig":
        """Return a copy with some fields overridden."""
        return dataclasses.replace(self, **overrides)  # type: ignore[arg-type]


def llm_config(vocab_size: int = 512, name: str = "sim-llm") -> ModelConfig:
    """A 'large' model config at reproduction scale."""
    return ModelConfig(
        vocab_size=vocab_size,
        d_model=128,
        n_layers=4,
        n_heads=8,
        max_seq_len=512,
        name=name,
    )


def ssm_config(vocab_size: int = 512, name: str = "sim-ssm") -> ModelConfig:
    """A 'small speculative model' config ~50-100x smaller than llm_config."""
    return ModelConfig(
        vocab_size=vocab_size,
        d_model=32,
        n_layers=2,
        n_heads=2,
        max_seq_len=512,
        name=name,
    )
