"""Training loop (Adam) for the NumPy transformer.

Supports two losses:

* next-token cross-entropy against a corpus (pre-training a toy LM), and
* KL distillation against a teacher's distributions (aligning an SSM with
  the LLM — the core operation of the paper's boost-tuning, section 3).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence

import numpy as np

from repro.model.layers import kl_divergence_loss, softmax_cross_entropy, stable_softmax
from repro.model.transformer import TransformerLM


@dataclass
class TrainingConfig:
    """Optimizer and loop hyper-parameters."""

    learning_rate: float = 1e-3
    beta1: float = 0.9
    beta2: float = 0.999
    eps: float = 1e-8
    grad_clip: float = 1.0
    max_steps: int = 100
    log_every: int = 0

    def __post_init__(self) -> None:
        if self.learning_rate <= 0:
            raise ValueError("learning_rate must be positive")
        if not 0 <= self.beta1 < 1 or not 0 <= self.beta2 < 1:
            raise ValueError("betas must be in [0, 1)")


class AdamOptimizer:
    """Adam with bias correction and optional global-norm gradient clipping."""

    def __init__(self, config: TrainingConfig):
        self.config = config
        self._m: Dict[str, np.ndarray] = {}
        self._v: Dict[str, np.ndarray] = {}
        self._step = 0

    def apply(self, params, grads: Dict[str, np.ndarray]) -> None:
        """Apply one update to ``params`` (a :class:`ParameterStore`)."""
        cfg = self.config
        if cfg.grad_clip > 0:
            norm = float(
                np.sqrt(sum(float((g**2).sum()) for g in grads.values()))
            )
            if norm > cfg.grad_clip:
                scale = cfg.grad_clip / (norm + 1e-12)
                grads = {k: g * scale for k, g in grads.items()}
        self._step += 1
        t = self._step
        for name, grad in grads.items():
            if name not in self._m:
                self._m[name] = np.zeros_like(grad)
                self._v[name] = np.zeros_like(grad)
            m = self._m[name]
            v = self._v[name]
            m *= cfg.beta1
            m += (1 - cfg.beta1) * grad
            v *= cfg.beta2
            v += (1 - cfg.beta2) * grad**2
            m_hat = m / (1 - cfg.beta1**t)
            v_hat = v / (1 - cfg.beta2**t)
            params[name] = params[name] - cfg.learning_rate * m_hat / (
                np.sqrt(v_hat) + cfg.eps
            )


@dataclass
class TrainingReport:
    """Loss trajectory of a training run."""

    losses: List[float] = field(default_factory=list)

    @property
    def final_loss(self) -> float:
        return self.losses[-1] if self.losses else float("nan")

    @property
    def initial_loss(self) -> float:
        return self.losses[0] if self.losses else float("nan")


class Trainer:
    """Trains a :class:`TransformerLM` on token sequences."""

    def __init__(self, model: TransformerLM, config: Optional[TrainingConfig] = None):
        self.model = model
        self.config = config or TrainingConfig()
        self.optimizer = AdamOptimizer(self.config)

    def train_lm(
        self,
        sequences: Sequence[np.ndarray],
        rng: Optional[np.random.Generator] = None,
    ) -> TrainingReport:
        """Next-token language-model training over ``sequences``.

        Each step draws one sequence (cyclically or at random) and performs a
        full-sequence forward/backward with the causal mask.
        """
        report = TrainingReport()
        rng = rng or np.random.default_rng(0)
        for step in range(self.config.max_steps):
            seq = np.asarray(sequences[int(rng.integers(len(sequences)))])
            seq = seq[: self.model.config.max_seq_len]
            if len(seq) < 2:
                continue
            logits, caches = self.model.forward_train(seq)
            targets = np.concatenate([seq[1:], [-1]])
            loss, dlogits = softmax_cross_entropy(logits, targets)
            grads = self.model.backward(dlogits, caches)
            self.optimizer.apply(self.model.params, grads)
            report.losses.append(loss)
        return report

    def distill(
        self,
        teacher: TransformerLM,
        sequences: Sequence[np.ndarray],
        rng: Optional[np.random.Generator] = None,
        temperature: float = 1.0,
    ) -> TrainingReport:
        """KL-distill the student toward ``teacher`` on ``sequences``.

        This is the alignment mechanism the paper gets for free from
        same-corpus pre-training (OPT-125M vs OPT-175B) and explicitly via
        boost-tuning: the SSM learns to match the LLM's next-token
        distribution at every position of the corpus.
        """
        report = TrainingReport()
        rng = rng or np.random.default_rng(0)
        for step in range(self.config.max_steps):
            seq = np.asarray(sequences[int(rng.integers(len(sequences)))])
            seq = seq[: min(self.model.config.max_seq_len,
                            teacher.config.max_seq_len)]
            if len(seq) < 2:
                continue
            teacher_logits = teacher.logits_for_sequence(seq)
            teacher_probs = stable_softmax(teacher_logits / temperature)
            logits, caches = self.model.forward_train(seq)
            loss, dlogits = kl_divergence_loss(logits, teacher_probs)
            grads = self.model.backward(dlogits, caches)
            self.optimizer.apply(self.model.params, grads)
            report.losses.append(loss)
        return report
