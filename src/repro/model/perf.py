"""Operation counters for the decoding hot path (registry shim).

The fused-batching work (block-sparse attention over a shared KV arena)
makes claims that are easy to regress silently: "no cross-request score
FLOPs", "no per-step KV copies", "allocation-free steady-state masks".
This module threads cheap integer counters through the primitives so those
claims are *asserted* by the ``perf_smoke`` tier-1 tests and *reported* by
``benchmarks/bench_batched_fused.py`` — the NumPy analogue of a CUDA
profiler's achieved-FLOPs/bytes-moved columns.

Since the unified observability layer landed, this module is a thin shim:
the counts live in the process-wide metrics registry
(:data:`repro.obs.REGISTRY`) as ``repro.model.<counter>`` series, where
``repro metrics`` and the CI perf gate read them alongside everything else.
The legacy surface is unchanged — ``add_*`` helpers, :func:`reset`,
:data:`COUNTERS` attribute access, and::

    with perf.track() as c:
        verifier.verify_batch(trees, caches)
    assert c.cross_request_score_flops == 0

``track`` measures the *delta* over its body, so nesting and unrelated
background accumulation are both safe.
"""

from __future__ import annotations

from contextlib import contextmanager
from dataclasses import dataclass, fields

from repro.obs import REGISTRY


@dataclass
class PerfCounters:
    """A point-in-time copy (or delta) of the hot-path operation counts.

    Attributes:
        gemm_flops: Multiply-add FLOPs (counted as 2*m*n*k) spent in
            ``linear_forward`` — QKV/output projections, MLP, LM head.
        attn_score_flops: FLOPs spent forming attention scores and the
            weighted value sum (2 * 2 * heads * n_q * n_k * d_head).
        cross_request_score_flops: The subset of ``attn_score_flops`` spent
            on query/key pairs from *different* requests — work whose result
            is guaranteed to be masked to ``-inf``.  The dense-fused batch
            path pays this; the block-sparse path must report zero.
        kv_bytes_copied: Bytes of cached keys/values copied to stage
            attention inputs (per-layer concatenation in the dense path,
            block gathers in the paged path).  Zero-copy views count
            nothing; post-verification compaction is excluded (it is
            bounded by the accepted path, not the batch).
        mask_cells_allocated: Cells of freshly allocated attention-mask
            buffers.  Steady-state decode with reused (``out=``) buffers
            allocates none.
        hot_alloc_events: Tracked hot-path buffer allocations — scratch
            arena growth (:class:`repro.model.scratch.ScratchArena`) plus
            fresh (non-``out=``) mask buffers.  ``DecodePipeline.tick``
            folds the per-tick delta into ``repro.engine.tick.allocs``,
            which CI gates to zero on steady-state ticks.
        hot_alloc_bytes: Bytes requested by those allocations.
    """

    gemm_flops: int = 0
    attn_score_flops: int = 0
    cross_request_score_flops: int = 0
    kv_bytes_copied: int = 0
    mask_cells_allocated: int = 0
    hot_alloc_events: int = 0
    hot_alloc_bytes: int = 0

    def snapshot(self) -> "PerfCounters":
        """An independent copy of these counts."""
        return PerfCounters(
            **{f.name: getattr(self, f.name) for f in fields(self)}
        )

    def delta(self, earlier: "PerfCounters") -> "PerfCounters":
        """Counts accumulated since ``earlier`` was snapshotted."""
        return PerfCounters(
            **{
                f.name: getattr(self, f.name) - getattr(earlier, f.name)
                for f in fields(self)
            }
        )


#: The registry series backing each legacy counter field, interned once.
_METRICS = {
    f.name: REGISTRY.counter(f"repro.model.{f.name}")
    for f in fields(PerfCounters)
}


class _RegistryView:
    """Live attribute view over the registry-backed hot-path counters.

    ``perf.COUNTERS.gemm_flops`` reads the registry series
    ``repro.model.gemm_flops`` at access time — the legacy accumulator
    object, now a window onto the shared registry.
    """

    def __getattr__(self, name: str) -> int:
        try:
            return _METRICS[name].value
        except KeyError:
            raise AttributeError(name) from None

    def snapshot(self) -> PerfCounters:
        """An independent :class:`PerfCounters` copy of the current counts."""
        return PerfCounters(
            **{name: metric.value for name, metric in _METRICS.items()}
        )

    def delta(self, earlier: PerfCounters) -> PerfCounters:
        """Counts accumulated since ``earlier`` was snapshotted."""
        return self.snapshot().delta(earlier)


#: The global accumulator the primitives add into (registry-backed view).
COUNTERS = _RegistryView()


def reset() -> None:
    """Zero the hot-path counters (tests and benchmarks start fresh).

    Only the ``repro.model.*`` operation counters are touched; use
    :func:`repro.obs.reset_observability` to zero the whole registry.
    """
    for metric in _METRICS.values():
        metric.value = 0


@contextmanager
def track():
    """Yield a :class:`PerfCounters` that, on exit, holds the body's delta.

    The yielded object is filled in place when the ``with`` block exits, so
    it can be inspected after the block.
    """
    before = COUNTERS.snapshot()
    result = PerfCounters()
    try:
        yield result
    finally:
        after = COUNTERS.delta(before)
        for f in fields(PerfCounters):
            setattr(result, f.name, getattr(after, f.name))


def add_gemm(m: int, k: int, n: int) -> None:
    """Record one ``(m, k) @ (k, n)`` GEMM."""
    _METRICS["gemm_flops"].value += 2 * m * k * n


def add_attention(n_heads: int, n_q: int, n_k: int, d_head: int) -> None:
    """Record one masked attention block (scores + weighted sum)."""
    _METRICS["attn_score_flops"].value += 2 * 2 * n_heads * n_q * n_k * d_head


def add_cross_request_scores(n_heads: int, cells: int, d_head: int) -> None:
    """Record score FLOPs spent on cross-request (always-masked) cells."""
    _METRICS["cross_request_score_flops"].value += 2 * 2 * n_heads * cells * d_head


def add_kv_copy(n_bytes: int) -> None:
    """Record bytes of K/V copied to stage an attention input."""
    _METRICS["kv_bytes_copied"].value += n_bytes


def add_mask_alloc(cells: int, itemsize: int = 8) -> None:
    """Record a freshly allocated mask buffer of ``cells`` cells.

    A fresh mask is also a hot-path allocation event, so it is charged to
    :func:`add_hot_alloc` as well (scratch-backed ``out=`` masks charge
    nothing here — their rare growth is counted by the arena itself).
    """
    _METRICS["mask_cells_allocated"].value += cells
    add_hot_alloc(cells * itemsize)


def add_mask_cells(cells: int) -> None:
    """Record mask cells whose allocation was already counted elsewhere.

    :class:`~repro.model.scratch.ScratchArena` charges its own growth to
    :func:`add_hot_alloc`; mask scratches layered on the arena use this to
    keep ``mask_cells_allocated`` accurate without double-counting the
    allocation event."""
    _METRICS["mask_cells_allocated"].value += cells


def add_hot_alloc(n_bytes: int) -> None:
    """Record one tracked hot-path buffer allocation of ``n_bytes``."""
    _METRICS["hot_alloc_events"].value += 1
    _METRICS["hot_alloc_bytes"].value += n_bytes
