"""Rotary position embeddings (RoPE), as used by the LLaMA family.

RoPE encodes a token's absolute position by rotating each consecutive pair
of query/key channels by a position-dependent angle; attention scores then
depend only on *relative* positions.  For tree-parallel decoding this
composes cleanly with depth-based positions: two sibling candidates at the
same depth receive the same rotation, exactly as they would if decoded in
each other's place.

The rotation is orthogonal and linear per position, so its backward pass is
the inverse rotation — used by the differentiable attention path.
"""

from __future__ import annotations

from functools import lru_cache
from typing import Tuple

import numpy as np

from repro.analysis.sanitizer import tensor_contract


@lru_cache(maxsize=32)
def _angle_table(max_positions: int, d_head: int, base: float) -> Tuple:
    """Precomputed (cos, sin) tables of shape ``(max_positions, d_head/2)``."""
    half = d_head // 2
    # lint: allow-dtype one-time cached table; angles computed at full precision
    inv_freq = base ** (-np.arange(half, dtype=np.float64) / half)
    # lint: allow-dtype one-time cached table; angles computed at full precision
    angles = np.outer(np.arange(max_positions, dtype=np.float64), inv_freq)
    return np.cos(angles), np.sin(angles)


@tensor_contract(x={"ndim": 3}, positions={"ndim": 1})
def rope_rotate(
    x: np.ndarray,
    positions: np.ndarray,
    base: float = 10000.0,
    inverse: bool = False,
    max_positions: int = 4096,
) -> np.ndarray:
    """Apply (or invert) the rotary embedding for the given positions.

    Args:
        x: ``(n, h, d_head)`` queries or keys; ``d_head`` must be even.
        positions: ``(n,)`` absolute positions.
        base: RoPE frequency base (10000 in LLaMA).
        inverse: Rotate by the negative angle (the backward pass).
        max_positions: Size of the cached angle table.

    Returns:
        The rotated tensor, same shape as ``x``.
    """
    n, h, d_head = x.shape
    if d_head % 2 != 0:
        raise ValueError(f"d_head must be even for RoPE, got {d_head}")
    positions = np.asarray(positions, dtype=np.intp)
    if positions.shape != (n,):
        raise ValueError(
            f"positions shape {positions.shape} does not match {n} tokens"
        )
    table_size = max(max_positions, int(positions.max(initial=0)) + 1)
    cos, sin = _angle_table(table_size, d_head, float(base))
    c = cos[positions][:, None, :]  # (n, 1, half)
    s = sin[positions][:, None, :]
    if inverse:
        s = -s
    x1 = x[..., 0::2]
    x2 = x[..., 1::2]
    out = np.empty_like(x)
    out[..., 0::2] = x1 * c - x2 * s
    out[..., 1::2] = x1 * s + x2 * c
    return out


@tensor_contract(q={"ndim": 3}, k={"ndim": 3})
def relative_score_invariance_check(
    q: np.ndarray, k: np.ndarray, shift: int, base: float = 10000.0
) -> float:
    """Max deviation of RoPE dot products under a global position shift.

    RoPE's defining property: ``<R(p)q, R(m)k>`` depends only on ``p - m``.
    Exposed as a utility so tests (and users validating custom bases) can
    check the invariance numerically.
    """
    n = q.shape[0]
    positions = np.arange(n)
    q0 = rope_rotate(q, positions, base=base)
    k0 = rope_rotate(k, positions, base=base)
    q1 = rope_rotate(q, positions + shift, base=base)
    k1 = rope_rotate(k, positions + shift, base=base)
    scores0 = np.einsum("qhd,khd->hqk", q0, k0)
    scores1 = np.einsum("qhd,khd->hqk", q1, k1)
    return float(np.abs(scores0 - scores1).max())
