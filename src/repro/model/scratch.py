"""Reusable scratch buffers for the allocation-free decode hot path.

The steady-state decode loop needs the same handful of staging buffers every
iteration — attention masks, the batch's concatenated token/position index
vectors, the packed QKV GEMM output, LM-head logits, sampling probability
vectors — and allocating them anew each tick makes the loop
allocation-bound long before it is FLOP-bound (the Sequoia framing: host
allocation churn moves the implementation off the hardware roofline).

:class:`ScratchArena` generalizes the grow-only ``_IndexScratch`` /
``MaskScratch`` pattern into one pool: persistent buffers keyed by
``(shape-class tag, dtype)``.  ``take(tag, shape, dtype)`` returns a
writable view of the persistent buffer for that key, allocating only when a
request outgrows every previous one for the same key:

* with a ``bound`` (the caller's worst-case shape, e.g. mask dimensions
  bounded by ``max_seq_len``), the backing buffer is allocated **once** at
  the bound, so the steady state performs exactly zero allocations;
* without a bound, each dimension grows to the next power of two, so
  allocations are O(log) in the largest shape ever seen and the steady
  state is allocation-free between (rare) doublings.

Every growth event is charged to the ``repro.model.hot_alloc_*`` perf
counters; :meth:`repro.engine.pipeline.DecodePipeline.tick` folds the
per-tick delta into the ``repro.engine.tick.allocs`` counter that CI gates
to zero on steady-state ticks (see ``benchmarks/ci_gate.py``).
"""

from __future__ import annotations

from typing import Dict, Optional, Sequence, Tuple

import numpy as np

from repro.model import perf


def _round_up_pow2(n: int) -> int:
    """Smallest power of two >= ``n`` (0 and 1 map to 1)."""
    if n <= 1:
        return 1
    return 1 << (n - 1).bit_length()


class ScratchArena:
    """Grow-only pool of persistent staging buffers keyed by (tag, dtype).

    One arena is owned per steady-state loop participant (a verifier, a
    backend, a packed speculator) — **not** shared across threads; like the
    metrics registry, the arena assumes the single-threaded NumPy decode
    loop.  Views returned by :meth:`take` are valid until the next ``take``
    of the same key; callers must consume (or copy out of) a view before
    re-taking it, which the one-iteration decode dataflow guarantees.
    """

    def __init__(self) -> None:
        self._buffers: Dict[Tuple[str, np.dtype], np.ndarray] = {}
        #: Number of backing-buffer allocations performed by this arena.
        self.alloc_events = 0
        #: Total bytes those allocations requested.
        self.alloc_bytes = 0

    def take(
        self,
        tag: str,
        shape: Sequence[int],
        dtype,
        bound: Optional[Sequence[int]] = None,
    ) -> np.ndarray:
        """A writable ``shape`` view of the persistent buffer for ``tag``.

        Args:
            tag: Shape-class name (e.g. ``"mask"``, ``"qkv"``, ``"logits"``).
                Buffers are keyed by ``(tag, dtype)``; two users of one
                arena must take distinct tags for concurrently-live views.
            shape: Requested view shape; every dimension may vary call to
                call.
            dtype: Element type of the buffer.
            bound: Optional per-dimension worst-case sizes.  When given, the
                backing buffer is allocated directly at
                ``max(shape, bound)`` so later growth never happens.

        Returns:
            A writable view of the backing buffer with exactly ``shape``;
            contents are unspecified (callers overwrite).  The view is only
            C-contiguous when every trailing dimension matches the backing
            buffer (callers that reshape must keep trailing dims fixed,
            e.g. by bounding them exactly).
        """
        shape = tuple(int(s) for s in shape)
        if any(s < 0 for s in shape):
            raise ValueError(f"negative scratch shape {shape}")
        dt = np.dtype(dtype)
        key = (tag, dt)
        buf = self._buffers.get(key)
        if buf is not None and buf.ndim != len(shape):
            raise ValueError(
                f"scratch tag {tag!r} holds a {buf.ndim}-d buffer but "
                f"{len(shape)}-d was requested"
            )
        if buf is None or any(b < s for b, s in zip(buf.shape, shape)):
            grown = []
            for dim, need in enumerate(shape):
                have = buf.shape[dim] if buf is not None else 0
                cap = int(bound[dim]) if bound is not None else 0
                if cap:
                    target = max(need, have, cap)
                else:
                    target = max(_round_up_pow2(need), have)
                grown.append(target)
            buf = np.empty(tuple(grown), dtype=dt)
            self._buffers[key] = buf
            self.alloc_events += 1
            self.alloc_bytes += buf.nbytes
            perf.add_hot_alloc(buf.nbytes)
        if buf.shape == shape:
            return buf
        return buf[tuple(slice(0, s) for s in shape)]

    def buffer_shape(self, tag: str, dtype) -> Optional[Tuple[int, ...]]:
        """Current backing-buffer shape for ``(tag, dtype)``, if allocated."""
        buf = self._buffers.get((tag, np.dtype(dtype)))
        return None if buf is None else buf.shape

    def reserved_bytes(self) -> int:
        """Total bytes currently held across all backing buffers."""
        return sum(buf.nbytes for buf in self._buffers.values())
