"""Token sampling utilities: greedy, temperature, top-k and top-p.

The paper's verifier supports both greedy decoding and stochastic decoding
(section 4.3); these helpers define the distributions both the LLM and the
SSMs sample from.  ``softmax`` is re-exported here as the canonical way to
turn logits into the distributions consumed by multi-step speculative
sampling.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

import numpy as np

from repro.analysis.sanitizer import tensor_contract
from repro.model.layers import stable_softmax as softmax


@dataclass(frozen=True)
class SamplingConfig:
    """How to turn logits into a next-token distribution.

    Attributes:
        temperature: Softmax temperature; values < 1 sharpen.
        top_k: If > 0, keep only the k most likely tokens.
        top_p: If < 1, keep the smallest prefix of tokens whose cumulative
            probability reaches ``top_p`` (nucleus sampling).
        greedy: If True, sampling degenerates to argmax and the other knobs
            are ignored.
    """

    temperature: float = 1.0
    top_k: int = 0
    top_p: float = 1.0
    greedy: bool = False

    def __post_init__(self) -> None:
        if self.temperature <= 0:
            raise ValueError(f"temperature must be > 0, got {self.temperature}")
        if self.top_k < 0:
            raise ValueError(f"top_k must be >= 0, got {self.top_k}")
        if not 0 < self.top_p <= 1.0:
            raise ValueError(f"top_p must be in (0, 1], got {self.top_p}")


@tensor_contract(probs={"ndim": 1})
def top_k_filter(probs: np.ndarray, k: int) -> np.ndarray:
    """Zero all but the ``k`` largest probabilities and renormalize."""
    if k <= 0 or k >= probs.shape[-1]:
        return probs
    kept = np.zeros_like(probs)
    idx = np.argpartition(probs, -k)[-k:]
    kept[idx] = probs[idx]
    total = kept.sum()
    if total <= 0:
        raise ValueError("top-k filtering removed all probability mass")
    return kept / total


@tensor_contract(probs={"ndim": 1})
def top_p_filter(probs: np.ndarray, p: float) -> np.ndarray:
    """Nucleus filtering: keep the smallest set with cumulative mass >= p."""
    if p >= 1.0:
        return probs
    order = np.argsort(probs)[::-1]
    cumulative = np.cumsum(probs[order])
    # Keep every token up to and including the first that crosses p.
    cutoff = int(np.searchsorted(cumulative, p)) + 1
    kept = np.zeros_like(probs)
    keep_idx = order[:cutoff]
    kept[keep_idx] = probs[keep_idx]
    return kept / kept.sum()


@tensor_contract(logits={"ndim": 1})
def distribution_from_logits(
    logits: np.ndarray, config: SamplingConfig,
    out: Optional[np.ndarray] = None,
) -> np.ndarray:
    """The next-token distribution implied by ``logits`` under ``config``.

    For greedy configs this is a one-hot distribution on the argmax, which
    makes greedy decoding a special case of stochastic verification.

    Pass ``out`` (a float64 ``(vocab,)`` buffer, typically a scratch-arena
    view) to build the distribution without allocating; results are
    bit-identical to the allocating path.  When top-k/top-p filtering is
    active the filtered distribution is a fresh array either way (the
    filters are off on the greedy/serving hot path).
    """
    if config.greedy:
        if out is None:
            # lint: allow-dtype verification distributions are float64 by contract (MSS ratio/residual math)
            probs = np.zeros(logits.shape[-1], dtype=np.float64)
        else:
            probs = out
            probs[:] = 0.0
        probs[int(np.argmax(logits))] = 1.0
        return probs
    if out is None:
        probs = softmax(logits / config.temperature)
    else:
        np.divide(logits, config.temperature, out=out)
        probs = softmax(out, out=out)
    if config.top_k:
        probs = top_k_filter(probs, config.top_k)
    if config.top_p < 1.0:
        probs = top_p_filter(probs, config.top_p)
    return probs


@tensor_contract(logits={"ndim": 1})
def greedy_token(logits: np.ndarray) -> int:
    """Argmax token id."""
    return int(np.argmax(logits))


@tensor_contract(logits={"ndim": 1})
def sample_token(
    logits: np.ndarray,
    config: SamplingConfig,
    rng: np.random.Generator,
    probs_out: Optional[np.ndarray] = None,
) -> int:
    """Sample a token id from ``logits`` under ``config``.

    ``probs_out`` optionally receives the intermediate distribution (a
    reused scratch buffer keeps stochastic incremental decoding
    allocation-free; greedy sampling never builds a distribution).
    """
    if config.greedy:
        return greedy_token(logits)
    probs = distribution_from_logits(logits, config, out=probs_out)
    return int(rng.choice(probs.shape[-1], p=probs))


@tensor_contract(probs={"ndim": 1})
def sample_from_probs(probs: np.ndarray, rng: np.random.Generator) -> int:
    """Sample a token id from an explicit probability vector."""
    total = probs.sum()
    if not np.isfinite(total) or total <= 0:
        raise ValueError(f"invalid probability vector (sum={total})")
    return int(rng.choice(probs.shape[-1], p=probs / total))


@tensor_contract(probs={"ndim": 1})
def top_k_tokens(probs: np.ndarray, k: int) -> np.ndarray:
    """Ids of the ``k`` most likely tokens, most likely first."""
    if k <= 0:
        return np.empty(0, dtype=np.intp)
    k = min(k, probs.shape[-1])
    idx = np.argpartition(probs, -k)[-k:]
    return idx[np.argsort(probs[idx])[::-1]]


@tensor_contract(probs={"ndim": 1})
def entropy(probs: np.ndarray, eps: float = 1e-12) -> float:
    """Shannon entropy in nats (used by workload characterization)."""
    clipped = np.clip(probs, eps, None)
    return float(-(probs * np.log(clipped)).sum())
