"""Logit-coupled small speculative models (SSMs).

The paper's SSMs (LLaMA-68M, OPT-125M) align with their LLMs because they
were pre-trained on the same corpus; Table 1 measures that alignment at
top-1 hit rates of 52-70% and top-5 of 82-97%.  Offline we cannot pre-train
real model pairs, so this module provides a *calibrated* substitute (see
DESIGN.md substitution table): a ``CoupledSSM`` whose next-token distribution
is a deterministic, context-dependent perturbation of a base model's
distribution.  The ``alignment`` knob moves the agreement statistics through
the paper's observed range, so benchmarks can reproduce the Table 1 / Table 2
spread across datasets.

The perturbation is deterministic in the token context, which matters for
correctness: multi-step speculative sampling divides by ``P(x | u, SSM)``,
so the SSM must define a genuine conditional distribution (the same context
must always yield the same probabilities).
"""

from __future__ import annotations

import hashlib
from dataclasses import dataclass, field
from typing import List, Optional

import numpy as np

from repro.analysis.sanitizer import tensor_contract
from repro.model.config import ModelConfig
from repro.model.layers import stable_softmax
from repro.model.transformer import TransformerLM


@dataclass
class CoupledCache:
    """Decode state for a :class:`CoupledSSM`: base cache + token context."""

    base_cache: object
    context: List[int] = field(default_factory=list)

    @property
    def length(self) -> int:
        return len(self.context)

    @property
    def capacity(self) -> int:
        return self.base_cache.capacity

    def snapshot(self) -> tuple:
        return (self.base_cache.snapshot(), len(self.context))

    def restore(self, snap: tuple) -> None:
        base_snap, n = snap
        self.base_cache.restore(base_snap)
        del self.context[n:]


class CoupledSSM:
    """An SSM whose distribution is a perturbed view of a base model's.

    With ``alignment=1.0`` the SSM is the base model exactly (oracle
    speculation); as ``alignment`` decreases, context-keyed Gaussian noise is
    added to the base logits and the temperature is raised, producing the
    partial-agreement regime of real SSM/LLM pairs.

    The class exposes the same decode surface as :class:`TransformerLM`
    (``new_cache`` / ``prefill`` / ``decode`` / ``next_distribution``), so the
    speculator can drive trained small transformers and coupled SSMs
    interchangeably.
    """

    def __init__(
        self,
        base: TransformerLM,
        alignment: float = 0.7,
        seed: int = 0,
        noise_scale: float = 4.0,
        uniform_mix: float = 2.0,
        name: Optional[str] = None,
        nominal_config: Optional[ModelConfig] = None,
    ):
        if not 0.0 <= alignment <= 1.0:
            raise ValueError(f"alignment must be in [0, 1], got {alignment}")
        if uniform_mix < 0:
            raise ValueError(f"uniform_mix must be >= 0, got {uniform_mix}")
        self.base = base
        self.alignment = alignment
        self.seed = seed
        self.noise_scale = noise_scale
        self.uniform_mix = uniform_mix
        self._name = name or f"coupled-ssm(a={alignment:.2f},seed={seed})"
        # The cost model charges the SSM at a nominal small-model size, not
        # at the base model's size (the coupling is a statistical stand-in
        # for a genuinely small model).
        self.nominal_config = nominal_config or base.config.scaled(
            d_model=max(8, base.config.d_model // 4),
            n_heads=max(1, base.config.n_heads // 4),
            n_layers=max(1, base.config.n_layers // 2),
            name=self._name,
        )

    # -- identity ---------------------------------------------------------------

    @property
    def name(self) -> str:
        return self._name

    @property
    def config(self) -> ModelConfig:
        return self.nominal_config

    def num_parameters(self) -> int:
        return self.nominal_config.num_parameters()

    # -- decode surface ----------------------------------------------------------

    def new_cache(self, capacity: int = 0) -> CoupledCache:
        return CoupledCache(base_cache=self.base.new_cache(capacity=capacity))

    @tensor_contract(tokens={"ndim": 1})
    def prefill(self, tokens: np.ndarray, cache: CoupledCache,
                scratch=None) -> np.ndarray:
        logits = self.base.prefill(tokens, cache.base_cache, scratch=scratch)
        cache.context.extend(int(t) for t in np.asarray(tokens).reshape(-1))
        return self._perturb(logits[-1], cache.context)[None, :]

    def decode(self, token: int, cache: CoupledCache) -> np.ndarray:
        logits = self.base.decode(token, cache.base_cache)
        cache.context.append(int(token))
        return self._perturb(logits, cache.context)

    def next_distribution(
        self, token: int, cache: CoupledCache, temperature: float = 1.0
    ) -> np.ndarray:
        logits = self.decode(token, cache)
        return stable_softmax(logits / max(temperature, 1e-8))

    # -- internals -----------------------------------------------------------------

    def _context_rng(self, context: List[int]) -> np.random.Generator:
        """Deterministic RNG keyed by (seed, token context)."""
        h = hashlib.blake2b(digest_size=8)
        h.update(self.seed.to_bytes(8, "little", signed=True))
        h.update(np.asarray(context, dtype=np.int64).tobytes())
        return np.random.default_rng(int.from_bytes(h.digest(), "little"))

    def _perturb(self, logits: np.ndarray, context: List[int]) -> np.ndarray:
        """Apply alignment-controlled, context-deterministic perturbation.

        Two effects compose, both scaled by ``1 - alignment``:

        * Gaussian logit noise (amplitude relative to the base logits'
          spread), which reorders the top-k ranking the way a smaller
          model's preferences drift from a larger one's, and
        * a uniform mixture (mass ``uniform_mix * (1 - alignment)``), which
          models the smaller model's diffuse misallocation of probability —
          it leaves rankings intact (greedy/top-k statistics unchanged) but
          lowers the distribution overlap ``sum_x min(p, q)`` that governs
          stochastic acceptance rates, matching the paper's observation
          that stochastic verification accepts less than greedy.

        The returned values are the (log-space) logits of the mixed
        distribution, so softmax of the output recovers it exactly.
        """
        if self.alignment >= 1.0:
            return logits
        rng = self._context_rng(context)
        spread = float(np.std(logits)) or 1.0
        sigma = self.noise_scale * (1.0 - self.alignment) * spread
        noise = rng.normal(0.0, sigma, size=logits.shape)
        probs = stable_softmax(logits + noise)
        eps = min(0.9, self.uniform_mix * (1.0 - self.alignment))
        mixed = (1.0 - eps) * probs + eps / probs.shape[-1]
        return np.log(mixed)
