"""Primitive neural-network layers with manual forward/backward passes.

Each primitive exposes ``*_forward`` returning ``(output, cache)`` and a
matching ``*_backward`` taking the upstream gradient plus the cache and
returning gradients for inputs and parameters.  The training path (used by
SSM distillation and boost-tuning, paper section 3) composes these.
"""

from __future__ import annotations

from typing import Dict, Tuple

import numpy as np

from repro.analysis.sanitizer import hot_path, tensor_contract
from repro.model import perf

LayerCache = Tuple


# -- linear --------------------------------------------------------------------


@tensor_contract(w={"ndim": 2}, b={"ndim": 1})
@hot_path
def linear_forward(
    x: np.ndarray, w: np.ndarray, b: np.ndarray,
    out: np.ndarray = None,
) -> Tuple[np.ndarray, LayerCache]:
    """Affine map ``y = x @ w + b`` over the last axis.

    Args:
        x: ``(..., d_in)`` input activations.
        w: ``(d_in, d_out)`` weight.
        b: ``(d_out,)`` bias.
        out: Optional output buffer of shape ``x.shape[:-1] + (d_out,)``.
            The GEMM writes into it directly and the bias adds in place —
            bit-identical to the allocating path (same GEMM, same
            elementwise add) but with zero allocations, which is how the
            decode loop's packed QKV projection and LM head reuse
            scratch-arena buffers.
    """
    perf.add_gemm(int(np.prod(x.shape[:-1], dtype=np.int64)), w.shape[0],
                  w.shape[1])
    if out is None:
        return x @ w + b, (x, w)
    np.matmul(x, w, out=out)
    out += b
    return out, (x, w)


# lint: allow-contract grad rank is polymorphic ((n, d) or batched (..., d)); pinned by the paired forward cache
def linear_backward(
    grad: np.ndarray, cache: LayerCache
) -> Tuple[np.ndarray, np.ndarray, np.ndarray]:
    """Backward for :func:`linear_forward`; returns ``(dx, dw, db)``."""
    x, w = cache
    dx = grad @ w.T
    flat_x = x.reshape(-1, x.shape[-1])
    flat_g = grad.reshape(-1, grad.shape[-1])
    dw = flat_x.T @ flat_g
    db = flat_g.sum(axis=0)
    return dx, dw, db


# -- layer norm -----------------------------------------------------------------


@tensor_contract(scale={"ndim": 1}, bias={"ndim": 1})
def layernorm_forward(
    x: np.ndarray, scale: np.ndarray, bias: np.ndarray, eps: float = 1e-5
) -> Tuple[np.ndarray, LayerCache]:
    """LayerNorm over the last axis: ``scale * (x - mu) / sigma + bias``."""
    mu = x.mean(axis=-1, keepdims=True)
    var = x.var(axis=-1, keepdims=True)
    inv_std = 1.0 / np.sqrt(var + eps)
    x_hat = (x - mu) * inv_std
    return scale * x_hat + bias, (x_hat, inv_std, scale)


# lint: allow-contract grad rank is polymorphic, mirroring layernorm_forward's x
def layernorm_backward(
    grad: np.ndarray, cache: LayerCache
) -> Tuple[np.ndarray, np.ndarray, np.ndarray]:
    """Backward for :func:`layernorm_forward`; returns ``(dx, dscale, dbias)``."""
    x_hat, inv_std, scale = cache
    d = x_hat.shape[-1]
    dbias = grad.reshape(-1, d).sum(axis=0)
    dscale = (grad * x_hat).reshape(-1, d).sum(axis=0)
    dx_hat = grad * scale
    # Standard LayerNorm backward over the normalized axis.
    dx = (
        dx_hat
        - dx_hat.mean(axis=-1, keepdims=True)
        - x_hat * (dx_hat * x_hat).mean(axis=-1, keepdims=True)
    ) * inv_std
    return dx, dscale, dbias


# -- GELU -------------------------------------------------------------------------

_GELU_C = np.sqrt(2.0 / np.pi)


# lint: allow-contract elementwise: any rank of x is legal
def gelu_forward(x: np.ndarray) -> Tuple[np.ndarray, LayerCache]:
    """Tanh-approximation GELU (as used by GPT-2/OPT)."""
    inner = _GELU_C * (x + 0.044715 * x**3)
    t = np.tanh(inner)
    return 0.5 * x * (1.0 + t), (x, t)


# lint: allow-contract elementwise: grad rank mirrors gelu_forward's x
def gelu_backward(grad: np.ndarray, cache: LayerCache) -> np.ndarray:
    """Backward for :func:`gelu_forward`."""
    x, t = cache
    dt_dx = (1.0 - t**2) * _GELU_C * (1.0 + 3 * 0.044715 * x**2)
    return grad * (0.5 * (1.0 + t) + 0.5 * x * dt_dx)


# -- embedding ---------------------------------------------------------------------


@tensor_contract(table={"ndim": 2})
def embedding_forward(
    token_ids: np.ndarray, table: np.ndarray
) -> Tuple[np.ndarray, LayerCache]:
    """Row lookup ``table[token_ids]``."""
    return table[token_ids], (token_ids, table.shape)


# lint: allow-contract grad rank mirrors embedding_forward's token_ids plus the table's last axis
def embedding_backward(grad: np.ndarray, cache: LayerCache) -> np.ndarray:
    """Scatter-add gradient back into an embedding-table-shaped buffer."""
    token_ids, shape = cache
    dtable = np.zeros(shape, dtype=grad.dtype)
    np.add.at(dtable, token_ids.reshape(-1), grad.reshape(-1, shape[1]))
    return dtable


# -- softmax / cross-entropy -----------------------------------------------------


@hot_path
def stable_softmax(logits: np.ndarray, axis: int = -1,  # lint: allow-contract logits rank is polymorphic (1-d rows, 2-d batches, 3-d attention scores)
                   out: np.ndarray = None) -> np.ndarray:
    """Numerically stable softmax.

    Pass ``out`` (same shape as ``logits``; may alias ``logits``) to compute
    in place — the same subtract/exp/normalize sequence, so results are
    bit-identical to the allocating path.
    """
    if out is None:
        shifted = logits - logits.max(axis=axis, keepdims=True)
        exp = np.exp(shifted)
        return exp / exp.sum(axis=axis, keepdims=True)
    np.subtract(logits, logits.max(axis=axis, keepdims=True), out=out)
    np.exp(out, out=out)
    out /= out.sum(axis=axis, keepdims=True)
    return out


@tensor_contract(targets={"ndim": 1})
def softmax_cross_entropy(
    logits: np.ndarray, targets: np.ndarray
) -> Tuple[float, np.ndarray]:
    """Mean cross-entropy loss and its gradient w.r.t. ``logits``.

    Args:
        logits: ``(n, vocab)`` unnormalized scores.
        targets: ``(n,)`` integer class labels; entries equal to ``-1`` are
            ignored (padding positions).

    Returns:
        ``(loss, dlogits)`` where loss is averaged over non-ignored positions.
    """
    if logits.ndim != 2:
        raise ValueError(f"expected 2-D logits, got shape {logits.shape}")
    mask = targets >= 0
    n_valid = int(mask.sum())
    probs = stable_softmax(logits)
    dlogits = probs.copy()
    if n_valid == 0:
        return 0.0, np.zeros_like(logits)
    safe_targets = np.where(mask, targets, 0)
    rows = np.arange(logits.shape[0])
    log_probs = np.log(np.clip(probs[rows, safe_targets], 1e-30, None))
    loss = float(-(log_probs * mask).sum() / n_valid)
    dlogits[rows, safe_targets] -= 1.0
    dlogits *= (mask / n_valid)[:, None]
    return loss, dlogits


@tensor_contract(student_logits={"ndim": 2}, teacher_probs={"ndim": 2})
def kl_divergence_loss(
    student_logits: np.ndarray, teacher_probs: np.ndarray
) -> Tuple[float, np.ndarray]:
    """Mean KL(teacher || student) and gradient w.r.t. student logits.

    Used by distillation: aligning an SSM's distribution with the LLM's.
    """
    student_probs = stable_softmax(student_logits)
    ratio = np.log(np.clip(teacher_probs, 1e-30, None)) - np.log(
        np.clip(student_probs, 1e-30, None)
    )
    n = student_logits.shape[0]
    loss = float((teacher_probs * ratio).sum() / n)
    dlogits = (student_probs - teacher_probs) / n
    return loss, dlogits


# lint: allow-contract value's rank matches whichever parameter it accumulates into
def merge_grad(grads: Dict[str, np.ndarray], name: str, value: np.ndarray) -> None:
    """Accumulate ``value`` into ``grads[name]`` (creating it if absent)."""
    if name in grads:
        grads[name] += value
    else:
        grads[name] = value
