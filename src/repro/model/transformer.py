"""Decoder-only transformer language model (NumPy, from scratch).

Provides the three entry points SpecInfer needs (paper sections 2 and 4):

* :meth:`TransformerLM.prefill` -- process a prompt in one pass, populating
  the KV cache (the "compute activations for all prompt tokens in a single
  step" of incremental decoding, Alg. 1),
* :meth:`TransformerLM.decode` -- one autoregressive step with cache,
* :meth:`TransformerLM.forward_masked` -- the general primitive: score a
  batch of new tokens at *explicit positions* under an *arbitrary additive
  mask* over (cached + new) keys.  Tree-parallel decoding (section 4.2) is
  this primitive fed with the topology-aware causal mask.

A differentiable pass (:meth:`forward_train` / :meth:`backward`) supports the
distillation and boost-tuning paths of the learning-based speculator.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from repro.analysis import sanitizer
from repro.analysis.sanitizer import tensor_contract
from repro.model.attention import (
    MaskScratch,
    block_diagonal_attention,
    causal_mask,
    cross_mask,
    mha_backward,
    mha_forward,
    split_heads,
)
from repro.model.config import ModelConfig
from repro.model.kv_cache import KVCache
from repro.model.layers import (
    embedding_backward,
    gelu_backward,
    gelu_forward,
    layernorm_backward,
    layernorm_forward,
    linear_backward,
    linear_forward,
    merge_grad,
    stable_softmax,
)
from repro.model.parameters import ParameterStore
from repro.model.scratch import ScratchArena


class TransformerLM:
    """A GPT-style decoder-only language model.

    Pre-LayerNorm residual blocks, learned absolute position embeddings,
    tied nothing (separate ``lm_head``), GELU MLP.
    """

    def __init__(self, config: ModelConfig, params: Optional[ParameterStore] = None,
                 seed: int = 0):
        self.config = config
        self.params = params if params is not None else ParameterStore.initialize(
            config, seed=seed
        )
        # Reusable all-zero mask for incremental decode steps (a single new
        # token sees the whole prefix, so the mask is always zeros); sliced
        # per step instead of allocated per step.
        self._decode_mask = np.zeros((1, config.max_seq_len),
                                     dtype=config.dtype)

    # -- convenience ----------------------------------------------------------

    @property
    def name(self) -> str:
        return self.config.name

    def new_cache(self, capacity: int = 0) -> KVCache:
        """Allocate a fresh KV cache sized for this model."""
        return KVCache(self.config, capacity=capacity)

    def num_parameters(self) -> int:
        return self.params.num_parameters()

    # -- inference -------------------------------------------------------------

    @tensor_contract(tokens={"ndim": 1}, positions={"ndim": 1},
                     mask={"ndim": 2})
    def forward_masked(
        self,
        tokens: np.ndarray,
        positions: np.ndarray,
        mask: np.ndarray,
        cache: KVCache,
        scratch: Optional[ScratchArena] = None,
    ) -> np.ndarray:
        """Score ``tokens`` under ``mask``, appending their KVs to ``cache``.

        This is the generic decoding primitive.  The mask has shape
        ``(n_new, prior + n_new)`` where ``prior`` is the cache length on
        entry; entry ``[j, k]`` is ``0`` if new token ``j`` may attend to
        (cached or new) token ``k`` and ``-inf`` otherwise.

        Args:
            tokens: ``(n_new,)`` token ids.
            positions: ``(n_new,)`` absolute positions for position embeddings
                (tree tokens use ``prefix_len + depth``).
            mask: ``(n_new, prior + n_new)`` additive attention mask.
            cache: KV cache; mutated (new keys/values appended).
            scratch: Optional staging-buffer arena (see
                :meth:`forward_masked_blocks`).

        Returns:
            ``(n_new, vocab)`` logits, one row per new token.
        """
        tokens = np.asarray(tokens, dtype=np.intp)
        n_new = tokens.shape[0]
        prior = cache.length
        if mask.shape != (n_new, prior + n_new):
            raise ValueError(
                f"mask shape {mask.shape} != expected {(n_new, prior + n_new)}"
            )
        return self.forward_masked_blocks(
            tokens, positions, [mask], [cache], priors=[prior],
            scratch=scratch,
        )

    @tensor_contract(tokens={"ndim": 1}, positions={"ndim": 1})
    def forward_masked_blocks(
        self,
        tokens: np.ndarray,
        positions: np.ndarray,
        masks: Sequence[np.ndarray],
        caches: Sequence,
        priors: Optional[Sequence[int]] = None,
        scratch: Optional[ScratchArena] = None,
    ) -> np.ndarray:
        """Block-sparse fused decode over several requests at once.

        The batched-verification attention matrix is block-diagonal: request
        ``i``'s new tokens may attend to its own cached prefix and its own
        new tokens, and to nothing of any other request.  This primitive
        exploits that structure directly:

        * embeddings, the packed QKV projection, the output projection, the
          MLP and the LM head run **batched** over all ``Σnᵢ`` new tokens
          (one GEMM each per layer, regardless of batch size);
        * attention runs **per request block** against that request's own
          keys/values (zero-copy cache views) under its own
          ``(nᵢ, priorᵢ + nᵢ)`` mask — the dense ``(Σnᵢ, Σkᵢ)`` score
          matrix, whose cross-request blocks are all ``-inf``, is never
          materialized, and neither is a concatenated K/V tensor.

        Score-FLOP complexity drops from ``O((Σnᵢ)·(Σkᵢ))`` to
        ``O(Σ nᵢ·kᵢ)`` — per-request cost stays flat as the batch grows.

        Args:
            tokens: ``(Σnᵢ,)`` new token ids, request blocks contiguous in
                batch order.
            positions: ``(Σnᵢ,)`` absolute positions, same layout.
            masks: Per-request additive masks of shape
                ``(nᵢ, priorᵢ + nᵢ)``; defines the block layout.
            caches: Matching per-request KV caches (contiguous, arena or
                paged); each receives its own new keys/values.
            priors: Optional precomputed ``cache.length`` per request, so
                the per-step batch layout is computed once by the caller
                instead of re-derived here.
            scratch: Optional :class:`ScratchArena` providing persistent
                staging buffers for the packed QKV projection, the
                block-sparse attention output and the LM-head logits.  The
                out-of-place and ``out=`` paths run the identical GEMM /
                elementwise sequence, so logits are bit-identical; only the
                allocation behaviour changes.  Callers that pass an arena
                own its lifecycle: the returned logits alias arena memory
                and are overwritten by the next call with the same arena.

        Returns:
            ``(Σnᵢ, vocab)`` logits, one row per new token, batch order.
        """
        tokens = np.asarray(tokens, dtype=np.intp)
        positions = np.asarray(positions, dtype=np.intp)
        if len(masks) != len(caches):
            raise ValueError(
                f"{len(masks)} masks but {len(caches)} caches"
            )
        if priors is None:
            priors = [c.length for c in caches]
        new_counts = [m.shape[0] for m in masks]
        offsets = [0]
        for count in new_counts:
            offsets.append(offsets[-1] + count)
        n_new = offsets[-1]
        if tokens.shape[0] != n_new:
            raise ValueError(
                f"{tokens.shape[0]} tokens but masks describe {n_new} rows"
            )
        for b, (mask, prior, count) in enumerate(
                zip(masks, priors, new_counts)):
            if mask.shape != (count, prior + count):
                raise ValueError(
                    f"mask shape {mask.shape} != expected "
                    f"{(count, prior + count)}"
                )
            sanitizer.guard_dtype(f"forward_masked_blocks masks[{b}]",
                                  mask, self.config.dtype)
        if positions.max(initial=0) >= self.config.max_seq_len:
            raise ValueError(
                f"position {int(positions.max())} exceeds max_seq_len "
                f"{self.config.max_seq_len}"
            )
        p = self.params
        cfg = self.config
        use_rope = cfg.position_encoding == "rope"
        x = p["tok_embed"][tokens]
        if not use_rope:
            x = x + p["pos_embed"][positions]
        n_heads = cfg.n_heads
        d_head = cfg.d_model // n_heads
        qkv_out = attn_buf = logits_out = None
        if scratch is not None:
            # Trailing dims are bounded exactly so the (n, h, d_head) view
            # stays C-contiguous and ``reshape(n_new, -1)`` below is a view,
            # not a silent copy.
            qkv_out = scratch.take("fwd.qkv", (n_new, 3 * cfg.d_model),
                                   cfg.dtype, bound=(0, 3 * cfg.d_model))
            attn_buf = scratch.take("fwd.attn", (n_new, n_heads, d_head),
                                    cfg.dtype, bound=(0, n_heads, d_head))
            logits_out = scratch.take("fwd.logits", (n_new, cfg.vocab_size),
                                      cfg.dtype, bound=(0, cfg.vocab_size))
        for i in range(cfg.n_layers):
            pre = f"layer{i}"
            h, _ = layernorm_forward(x, p[f"{pre}.ln1.scale"], p[f"{pre}.ln1.bias"])
            wqkv, bqkv = p.packed_qkv(f"{pre}.attn")
            qkv, _ = linear_forward(h, wqkv, bqkv, out=qkv_out)
            q, k, v = np.split(qkv, 3, axis=-1)
            qh = split_heads(q, n_heads)
            kh = split_heads(k, n_heads)
            if use_rope:
                from repro.model.rope import rope_rotate

                qh = rope_rotate(qh, positions)
                kh = rope_rotate(kh, positions)
            vh = split_heads(v, n_heads)
            kvs = []
            for b, cache in enumerate(caches):
                layer_kv = cache.layers[i]
                layer_kv.append(kh[offsets[b] : offsets[b + 1]],
                                vh[offsets[b] : offsets[b + 1]])
                kvs.append(layer_kv.view())
            attn = block_diagonal_attention(qh, kvs, masks, offsets,
                                            out=attn_buf)
            attn_out, _ = linear_forward(
                attn.reshape(n_new, -1), p[f"{pre}.attn.wo"], p[f"{pre}.attn.bo"]
            )
            x = x + attn_out
            h2, _ = layernorm_forward(
                x, p[f"{pre}.ln2.scale"], p[f"{pre}.ln2.bias"]
            )
            up, _ = linear_forward(h2, p[f"{pre}.mlp.w1"], p[f"{pre}.mlp.b1"])
            act, _ = gelu_forward(up)
            down, _ = linear_forward(act, p[f"{pre}.mlp.w2"], p[f"{pre}.mlp.b2"])
            x = x + down
        final, _ = layernorm_forward(x, p["final_ln.scale"], p["final_ln.bias"])
        if logits_out is None:
            logits = final @ p["lm_head"]
        else:
            logits = np.matmul(final, p["lm_head"], out=logits_out)
        sanitizer.guard_finite("forward_masked_blocks logits", logits)
        return logits

    @tensor_contract(tokens={"ndim": 1})
    def prefill(self, tokens: np.ndarray, cache: KVCache,
                scratch: Optional[ScratchArena] = None) -> np.ndarray:
        """Process a prompt, filling ``cache``; returns ``(n, vocab)`` logits.

        ``scratch`` backs both the cross mask and the forward staging
        buffers, making repeated prefills (the speculator mirroring accepted
        tokens every tick) allocation-free at steady state.  Arena-lifecycle
        caveats of :meth:`forward_masked_blocks` apply.
        """
        tokens = np.asarray(tokens, dtype=np.intp)
        n = tokens.shape[0]
        prior = cache.length
        positions = np.arange(prior, prior + n)
        mask_out = None
        if scratch is not None:
            mask_out = MaskScratch(
                self.config.dtype, arena=scratch, tag="prefill.mask",
                bound=(0, self.config.max_seq_len),
            ).take(n, prior + n)
        mask = cross_mask(n, prior + n, prior, dtype=self.config.dtype,
                          out=mask_out)
        return self.forward_masked(tokens, positions, mask, cache,
                                   scratch=scratch)

    def decode(self, token: int, cache: KVCache) -> np.ndarray:
        """One incremental decoding step; returns ``(vocab,)`` logits."""
        prior = cache.length
        # The single new token sees every prior position: the mask is all
        # zeros, so a slice of the preallocated buffer serves every step.
        mask = self._decode_mask[:, : prior + 1]
        logits = self.forward_masked(
            np.array([token], dtype=np.intp),
            np.array([prior], dtype=np.intp),
            mask, cache,
        )
        return logits[0]

    def next_distribution(
        self, token: int, cache: KVCache, temperature: float = 1.0
    ) -> np.ndarray:
        """Probability distribution over the next token after ``token``."""
        logits = self.decode(token, cache)
        return stable_softmax(logits / max(temperature, 1e-8))

    @tensor_contract(tokens={"ndim": 1})
    def logits_for_sequence(self, tokens: np.ndarray) -> np.ndarray:
        """Stateless full-sequence logits (used by tests and baselines)."""
        cache = self.new_cache(capacity=min(len(tokens), self.config.max_seq_len))
        return self.prefill(np.asarray(tokens), cache)

    # -- training --------------------------------------------------------------

    @tensor_contract(tokens={"ndim": 1})
    def forward_train(self, tokens: np.ndarray) -> Tuple[np.ndarray, List]:
        """Differentiable full-sequence forward pass (causal mask).

        Returns ``(logits, caches)`` where ``caches`` feed :meth:`backward`.
        """
        tokens = np.asarray(tokens, dtype=np.intp)
        n = tokens.shape[0]
        if n > self.config.max_seq_len:
            raise ValueError(
                f"sequence length {n} exceeds max_seq_len {self.config.max_seq_len}"
            )
        p = self.params
        use_rope = self.config.position_encoding == "rope"
        positions = np.arange(n)
        x = p["tok_embed"][tokens]
        if not use_rope:
            x = x + p["pos_embed"][positions]
        mask = causal_mask(n, dtype=self.config.dtype)
        caches: List = [(tokens, positions)]
        for i in range(self.config.n_layers):
            pre = f"layer{i}"
            h, ln1_c = layernorm_forward(
                x, p[f"{pre}.ln1.scale"], p[f"{pre}.ln1.bias"]
            )
            attn_out, attn_c = mha_forward(
                h, p, f"{pre}.attn", self.config.n_heads, mask,
                positions=positions, use_rope=use_rope,
            )
            x = x + attn_out
            h2, ln2_c = layernorm_forward(
                x, p[f"{pre}.ln2.scale"], p[f"{pre}.ln2.bias"]
            )
            up, up_c = linear_forward(h2, p[f"{pre}.mlp.w1"], p[f"{pre}.mlp.b1"])
            act, act_c = gelu_forward(up)
            down, down_c = linear_forward(act, p[f"{pre}.mlp.w2"], p[f"{pre}.mlp.b2"])
            x = x + down
            caches.append((ln1_c, attn_c, ln2_c, up_c, act_c, down_c))
        final, final_c = layernorm_forward(x, p["final_ln.scale"], p["final_ln.bias"])
        logits = final @ p["lm_head"]
        caches.append((final_c, final))
        return logits, caches

    @tensor_contract(dlogits={"ndim": 2})
    def backward(
        self, dlogits: np.ndarray, caches: List
    ) -> Dict[str, np.ndarray]:
        """Backward pass for :meth:`forward_train`; returns named gradients."""
        p = self.params
        grads: Dict[str, np.ndarray] = {}
        final_c, final = caches[-1]
        merge_grad(grads, "lm_head", final.T @ dlogits)
        dfinal = dlogits @ p["lm_head"].T
        dx, dscale, dbias = layernorm_backward(dfinal, final_c)
        merge_grad(grads, "final_ln.scale", dscale)
        merge_grad(grads, "final_ln.bias", dbias)
        for i in reversed(range(self.config.n_layers)):
            pre = f"layer{i}"
            ln1_c, attn_c, ln2_c, up_c, act_c, down_c = caches[1 + i]
            dact, dw2, db2 = linear_backward(dx, down_c)
            merge_grad(grads, f"{pre}.mlp.w2", dw2)
            merge_grad(grads, f"{pre}.mlp.b2", db2)
            dup = gelu_backward(dact, act_c)
            dh2, dw1, db1 = linear_backward(dup, up_c)
            merge_grad(grads, f"{pre}.mlp.w1", dw1)
            merge_grad(grads, f"{pre}.mlp.b1", db1)
            dres, dscale2, dbias2 = layernorm_backward(dh2, ln2_c)
            merge_grad(grads, f"{pre}.ln2.scale", dscale2)
            merge_grad(grads, f"{pre}.ln2.bias", dbias2)
            dx = dx + dres
            dh = mha_backward(dx, attn_c, f"{pre}.attn", grads)
            dres1, dscale1, dbias1 = layernorm_backward(dh, ln1_c)
            merge_grad(grads, f"{pre}.ln1.scale", dscale1)
            merge_grad(grads, f"{pre}.ln1.bias", dbias1)
            dx = dx + dres1
        tokens, positions = caches[0]
        merge_grad(
            grads,
            "tok_embed",
            embedding_backward(dx, (tokens, p["tok_embed"].shape)),
        )
        if self.config.position_encoding == "learned":
            merge_grad(
                grads,
                "pos_embed",
                embedding_backward(dx, (positions, p["pos_embed"].shape)),
            )
        return grads
