"""Named parameter store with initialization, serialization and arithmetic.

The transformer keeps all weights in a flat ``{name: ndarray}`` mapping so the
trainer, the boost-tuner and the checkpoints all share one representation.
"""

from __future__ import annotations

import io
from typing import Dict, Iterator, Tuple

import numpy as np

from repro.model.config import ModelConfig


class ParameterStore:
    """Flat named-tensor container for transformer weights.

    Names follow the convention::

        tok_embed, pos_embed,
        layer{i}.ln1.scale, layer{i}.ln1.bias,
        layer{i}.attn.{wq,wk,wv,wo}, layer{i}.attn.{bq,bk,bv,bo},
        layer{i}.ln2.scale, layer{i}.ln2.bias,
        layer{i}.mlp.{w1,b1,w2,b2},
        final_ln.scale, final_ln.bias, lm_head
    """

    def __init__(self, params: Dict[str, np.ndarray]):
        self._params = self._unpack_fused(params)
        # Memoized per-prefix packed QKV weights (see ``packed_qkv``);
        # invalidated whenever the underlying parameters change.
        self._packed: Dict[str, Tuple[np.ndarray, np.ndarray]] = {}

    @staticmethod
    def _unpack_fused(params: Dict[str, np.ndarray]) -> Dict[str, np.ndarray]:
        """Compatibility shim: split packed ``*.wqkv``/``*.bqkv`` tensors.

        Canonical storage stays the unpacked ``wq``/``wk``/``wv`` triplet
        (the training path updates them independently, and every existing
        checkpoint — ``benchmarks/results/bench_llm_weights.npz``, the
        ``examples/.zoo_cache`` zoo — stores them that way).  Checkpoints
        that instead carry fused ``wqkv`` tensors are split on load so both
        layouts keep working.
        """
        unpacked: Dict[str, np.ndarray] = {}
        for name, value in params.items():
            if name.endswith(".wqkv"):
                prefix = name[: -len(".wqkv")]
                wq, wk, wv = np.split(value, 3, axis=1)
                unpacked[f"{prefix}.wq"] = np.ascontiguousarray(wq)
                unpacked[f"{prefix}.wk"] = np.ascontiguousarray(wk)
                unpacked[f"{prefix}.wv"] = np.ascontiguousarray(wv)
            elif name.endswith(".bqkv"):
                prefix = name[: -len(".bqkv")]
                bq, bk, bv = np.split(value, 3)
                unpacked[f"{prefix}.bq"] = np.ascontiguousarray(bq)
                unpacked[f"{prefix}.bk"] = np.ascontiguousarray(bk)
                unpacked[f"{prefix}.bv"] = np.ascontiguousarray(bv)
            else:
                unpacked[name] = value
        return unpacked

    def packed_qkv(self, prefix: str) -> Tuple[np.ndarray, np.ndarray]:
        """Memoized ``(d, 3d)`` weight / ``(3d,)`` bias fusing Q, K and V.

        The decode hot path runs one packed GEMM per layer instead of three
        (``x @ wqkv`` then split), which matters every single step.  The
        packed tensors are rebuilt lazily after any parameter update, so
        training and boost-tuning see fresh weights.
        """
        cached = self._packed.get(prefix)
        if cached is None:
            cached = (
                np.concatenate(
                    [self[f"{prefix}.wq"], self[f"{prefix}.wk"],
                     self[f"{prefix}.wv"]],
                    axis=1,
                ),
                np.concatenate(
                    [self[f"{prefix}.bq"], self[f"{prefix}.bk"],
                     self[f"{prefix}.bv"]]
                ),
            )
            self._packed[prefix] = cached
        return cached

    # -- construction ------------------------------------------------------

    @classmethod
    def initialize(cls, config: ModelConfig, seed: int = 0) -> "ParameterStore":
        """Randomly initialize all weights for ``config``.

        Uses scaled-normal init (std 0.02, residual projections scaled by
        1/sqrt(2*n_layers) as in GPT-2) so tiny models produce well-behaved
        distributions without training.
        """
        rng = np.random.default_rng(seed)
        dtype = np.dtype(config.dtype)
        std = 0.02
        resid_std = std / np.sqrt(2.0 * config.n_layers)

        def normal(shape: Tuple[int, ...], scale: float = std) -> np.ndarray:
            return rng.normal(0.0, scale, size=shape).astype(dtype)

        d, f, v = config.d_model, config.d_ff, config.vocab_size
        params: Dict[str, np.ndarray] = {
            "tok_embed": normal((v, d)),
            "final_ln.scale": np.ones(d, dtype=dtype),
            "final_ln.bias": np.zeros(d, dtype=dtype),
            "lm_head": normal((d, v)),
        }
        if config.position_encoding == "learned":
            params["pos_embed"] = normal((config.max_seq_len, d))
        for i in range(config.n_layers):
            p = f"layer{i}"
            params[f"{p}.ln1.scale"] = np.ones(d, dtype=dtype)
            params[f"{p}.ln1.bias"] = np.zeros(d, dtype=dtype)
            params[f"{p}.attn.wq"] = normal((d, d))
            params[f"{p}.attn.wk"] = normal((d, d))
            params[f"{p}.attn.wv"] = normal((d, d))
            params[f"{p}.attn.wo"] = normal((d, d), resid_std)
            params[f"{p}.attn.bq"] = np.zeros(d, dtype=dtype)
            params[f"{p}.attn.bk"] = np.zeros(d, dtype=dtype)
            params[f"{p}.attn.bv"] = np.zeros(d, dtype=dtype)
            params[f"{p}.attn.bo"] = np.zeros(d, dtype=dtype)
            params[f"{p}.ln2.scale"] = np.ones(d, dtype=dtype)
            params[f"{p}.ln2.bias"] = np.zeros(d, dtype=dtype)
            params[f"{p}.mlp.w1"] = normal((d, f))
            params[f"{p}.mlp.b1"] = np.zeros(f, dtype=dtype)
            params[f"{p}.mlp.w2"] = normal((f, d), resid_std)
            params[f"{p}.mlp.b2"] = np.zeros(d, dtype=dtype)
        return cls(params)

    # -- mapping interface --------------------------------------------------

    def __getitem__(self, name: str) -> np.ndarray:
        return self._params[name]

    def __setitem__(self, name: str, value: np.ndarray) -> None:
        if name in self._params and self._params[name].shape != value.shape:
            raise ValueError(
                f"shape mismatch for {name}: "
                f"{self._params[name].shape} vs {value.shape}"
            )
        self._params[name] = value
        self._packed.clear()

    def __contains__(self, name: str) -> bool:
        return name in self._params

    def __iter__(self) -> Iterator[str]:
        return iter(self._params)

    def __len__(self) -> int:
        return len(self._params)

    def items(self) -> Iterator[Tuple[str, np.ndarray]]:
        return iter(self._params.items())

    def names(self) -> Tuple[str, ...]:
        return tuple(self._params.keys())

    # -- utilities -----------------------------------------------------------

    def num_parameters(self) -> int:
        """Total scalar parameter count."""
        return int(sum(p.size for p in self._params.values()))

    def num_bytes(self, bytes_per_param: int = 2) -> int:
        """Model size in bytes at the given precision (default FP16)."""
        return self.num_parameters() * bytes_per_param

    def copy(self) -> "ParameterStore":
        """Deep copy (used to snapshot weights during boost-tuning)."""
        return ParameterStore({k: v.copy() for k, v in self._params.items()})

    def zeros_like(self) -> "ParameterStore":
        """A store of zero tensors with matching shapes (gradient buffers)."""
        return ParameterStore(
            {k: np.zeros_like(v) for k, v in self._params.items()}
        )

    def add_scaled(self, other: "ParameterStore", scale: float) -> None:
        """In-place ``self += scale * other`` (SGD-style update)."""
        for name, value in other.items():
            self._params[name] += scale * value
        self._packed.clear()

    def global_norm(self) -> float:
        """L2 norm over all parameters (used for gradient clipping)."""
        total = 0.0
        for value in self._params.values():
            # lint: allow-dtype norm accumulation must not overflow at reduced precision
            total += float(np.sum(value.astype(np.float64) ** 2))
        return float(np.sqrt(total))

    # -- serialization --------------------------------------------------------

    def save(self, path: str) -> None:
        """Serialize to an ``.npz`` checkpoint."""
        np.savez(path, **self._params)

    @classmethod
    def load(cls, path: str) -> "ParameterStore":
        """Load from an ``.npz`` checkpoint produced by :meth:`save`."""
        with np.load(path) as data:
            return cls({k: data[k] for k in data.files})

    def to_bytes(self) -> bytes:
        """Serialize to in-memory bytes (used by tests)."""
        buf = io.BytesIO()
        np.savez(buf, **self._params)
        return buf.getvalue()

    @classmethod
    def from_bytes(cls, raw: bytes) -> "ParameterStore":
        """Inverse of :meth:`to_bytes`."""
        with np.load(io.BytesIO(raw)) as data:
            return cls({k: data[k] for k in data.files})
