"""Per-layer key/value cache with append, rollback and snapshotting.

SpecInfer's tree-parallel decoding (paper section 4.2) appends the keys and
values for *all* tokens of a speculated token tree in DFS order, then — after
verification — rolls the cache back so that only the verified path remains.
This module implements that contract:

* :meth:`KVCache.append` adds keys/values for new positions,
* :meth:`KVCache.truncate` drops everything past a verified length,
* :meth:`KVCache.keep_rows` compacts the cache down to the accepted tree
  path after verification (the "DFS update" in Figure 4).
"""

from __future__ import annotations

from typing import List, Sequence, Tuple

import numpy as np

from repro.analysis.sanitizer import tensor_contract
from repro.model.config import ModelConfig


class LayerKV:
    """Key/value tensors for a single transformer layer.

    Backed by pre-allocated buffers of shape ``(capacity, n_heads, d_head)``
    with an explicit length, mirroring how real serving systems slab-allocate
    cache memory.
    """

    def __init__(self, capacity: int, n_heads: int, d_head: int, dtype: str):
        self._keys = np.zeros((capacity, n_heads, d_head), dtype=dtype)
        self._values = np.zeros((capacity, n_heads, d_head), dtype=dtype)
        self.length = 0

    @classmethod
    @tensor_contract(keys={"ndim": 3}, values={"ndim": 3})
    def from_buffers(cls, keys: np.ndarray, values: np.ndarray) -> "LayerKV":
        """A layer cache over externally owned ``(capacity, h, d_head)``
        buffers — the hook :class:`~repro.model.arena.BatchArena` uses to
        make request caches *views* into a shared slab (writes go straight
        to the slab; ``view()`` slices it with no copy)."""
        if keys.shape != values.shape or keys.ndim != 3:
            raise ValueError(
                f"key/value buffers must share a (capacity, heads, d_head) "
                f"shape; got {keys.shape} and {values.shape}"
            )
        layer = cls.__new__(cls)
        layer._keys = keys
        layer._values = values
        layer.length = 0
        return layer

    @property
    def capacity(self) -> int:
        return self._keys.shape[0]

    @tensor_contract(keys={"ndim": 3}, values={"ndim": 3})
    def append(self, keys: np.ndarray, values: np.ndarray) -> None:
        """Append ``(n, h, d_head)`` keys/values at the current end."""
        n = keys.shape[0]
        if self.length + n > self.capacity:
            raise ValueError(
                f"KV cache overflow: length {self.length} + {n} new tokens "
                f"exceeds capacity {self.capacity}"
            )
        self._keys[self.length : self.length + n] = keys
        self._values[self.length : self.length + n] = values
        self.length += n

    def view(self) -> Tuple[np.ndarray, np.ndarray]:
        """Read-only views of the live region."""
        return self._keys[: self.length], self._values[: self.length]

    def truncate(self, length: int) -> None:
        """Forget all entries past ``length``."""
        if not 0 <= length <= self.length:
            raise ValueError(
                f"cannot truncate to {length}; current length {self.length}"
            )
        self.length = length

    def keep_rows(self, base: int, rows: Sequence[int]) -> None:
        """Compact the region past ``base`` down to the given relative rows.

        After tree verification only the accepted root-to-leaf path survives;
        ``rows`` are indices (relative to ``base``) of the surviving tokens in
        the order they should occupy positions ``base, base+1, ...``.
        """
        rows = list(rows)
        for r in rows:
            if not 0 <= r < self.length - base:
                raise ValueError(
                    f"row {r} out of range for region of size {self.length - base}"
                )
        idx = np.asarray(rows, dtype=np.intp) + base
        self._keys[base : base + len(rows)] = self._keys[idx]
        self._values[base : base + len(rows)] = self._values[idx]
        self.length = base + len(rows)


class KVCache:
    """A stack of :class:`LayerKV`, one per transformer layer."""

    def __init__(self, config: ModelConfig, capacity: int = 0):
        capacity = capacity or config.max_seq_len
        if capacity > config.max_seq_len:
            raise ValueError(
                f"capacity {capacity} exceeds max_seq_len {config.max_seq_len}"
            )
        self.config = config
        self.layers: List[LayerKV] = [
            LayerKV(capacity, config.n_heads, config.d_head, config.dtype)
            for _ in range(config.n_layers)
        ]

    @property
    def length(self) -> int:
        """Number of cached positions (identical across layers)."""
        return self.layers[0].length

    @property
    def capacity(self) -> int:
        return self.layers[0].capacity

    def truncate(self, length: int) -> None:
        """Roll every layer back to ``length`` positions."""
        for layer in self.layers:
            layer.truncate(length)

    def keep_rows(self, base: int, rows: Sequence[int]) -> None:
        """Compact every layer; see :meth:`LayerKV.keep_rows`."""
        for layer in self.layers:
            layer.keep_rows(base, rows)

    def snapshot(self) -> int:
        """Return a token describing the current state (just the length)."""
        return self.length

    def restore(self, snapshot: int) -> None:
        """Restore a state captured by :meth:`snapshot`.

        Only valid if nothing before ``snapshot`` positions was compacted
        since — which holds for the speculate/verify loop, where compaction
        only ever touches positions past the verified prefix.
        """
        self.truncate(snapshot)
