"""Shared KV arena: one preallocated slab per layer for a whole batch.

The dense-fused batch path staged attention inputs by concatenating every
request's keys and values per layer per step — O(total cached KV) of copying
on every decoding iteration.  The arena removes the copies at the source:

* :class:`BatchArena` owns, per transformer layer, one preallocated
  ``(capacity, n_heads, d_head)`` key slab and value slab shared by all
  requests in a batch;
* :meth:`BatchArena.new_sequence` carves a contiguous *row range* out of the
  slab and returns an :class:`ArenaKVCache` — a drop-in
  :class:`~repro.model.kv_cache.KVCache` whose per-layer buffers are NumPy
  views into the slab.  ``append`` writes through to the slab, ``view`` is a
  zero-copy slice, and ``keep_rows`` compacts in place, so every engine,
  verifier and speculator runs unmodified (same contract as
  :class:`~repro.model.paged_cache.PagedSequenceCache`);
* the block-sparse fused decode path
  (:meth:`~repro.model.transformer.TransformerLM.forward_masked_blocks`)
  then reads each request's keys directly from its arena range — the
  batched step never materializes a concatenated KV tensor.

Allocation is first-fit over free row ranges with coalescing on release,
which is plenty for the serving manager's churn (requests allocate full
``max_seq_len`` ranges by default, like the contiguous cache).
"""

from __future__ import annotations

from typing import List, Sequence, Tuple

import numpy as np

from repro.analysis import sanitizer
from repro.model.config import ModelConfig
from repro.model.kv_cache import LayerKV
from repro.obs import REGISTRY

# Aggregated across every arena in the process (see docs/observability.md).
_ALLOCATIONS = REGISTRY.counter(
    "repro.model.arena.allocations", help="row ranges carved for requests")
_RELEASES = REGISTRY.counter(
    "repro.model.arena.releases", help="row ranges returned to free lists")
_ROWS_USED = REGISTRY.gauge(
    "repro.model.arena.rows_used", help="slab rows currently carved out")
_BYTES_RESIDENT = REGISTRY.gauge(
    "repro.model.arena.bytes_resident",
    help="K/V bytes of currently carved-out rows across all layers")
_BYTES_HIGH_WATER = REGISTRY.gauge(
    "repro.model.arena.bytes_high_water",
    help="largest bytes_resident seen since the last registry reset")
_ROWS_COMPACTED = REGISTRY.counter(
    "repro.model.arena.rows_compacted",
    help="slab rows moved by post-verification keep_rows compaction")


class BatchArena:
    """Preallocated per-layer KV slabs shared by a batch of requests.

    Args:
        config: Model architecture (layer count, heads, head dim, dtype).
        capacity: Total slab rows per layer.  Defaults to
            ``max_requests * config.max_seq_len``.
        max_requests: Sizing shorthand when ``capacity`` is not given.
    """

    def __init__(self, config: ModelConfig, capacity: int = 0,
                 max_requests: int = 8):
        if capacity <= 0:
            capacity = max_requests * config.max_seq_len
        self.config = config
        self.capacity = capacity
        shape = (capacity, config.n_heads, config.d_head)
        self._keys = [
            np.zeros(shape, dtype=config.dtype) for _ in range(config.n_layers)
        ]
        self._values = [
            np.zeros(shape, dtype=config.dtype) for _ in range(config.n_layers)
        ]
        # K/V bytes one slab row occupies across all layers (both slabs).
        self.row_bytes = (
            2 * config.n_layers * config.n_heads * config.d_head
            * np.dtype(config.dtype).itemsize
        )
        # Free row ranges, kept sorted and coalesced: list of (start, stop).
        self._free: List[Tuple[int, int]] = [(0, capacity)]
        # Ranges currently owned by live ArenaKVCaches; the sanitizer checks
        # every new registration against these for overlap.
        self._live: List[Tuple[int, int]] = []

    # -- allocation ---------------------------------------------------------------

    @property
    def free_rows(self) -> int:
        return sum(stop - start for start, stop in self._free)

    @property
    def used_rows(self) -> int:
        return self.capacity - self.free_rows

    def utilization(self) -> float:
        """Fraction of slab rows currently carved out to requests."""
        return self.used_rows / self.capacity

    def new_sequence(self, capacity: int = 0) -> "ArenaKVCache":
        """Carve a row range for one request (first-fit).

        Args:
            capacity: Rows to reserve; defaults to ``config.max_seq_len``
                (a full contiguous-cache worth, the serving default).
        """
        capacity = capacity or self.config.max_seq_len
        if capacity > self.config.max_seq_len:
            raise ValueError(
                f"capacity {capacity} exceeds max_seq_len "
                f"{self.config.max_seq_len}"
            )
        for i, (start, stop) in enumerate(self._free):
            if stop - start >= capacity:
                if stop - start == capacity:
                    del self._free[i]
                else:
                    self._free[i] = (start + capacity, stop)
                return ArenaKVCache(self, start, start + capacity)
        raise MemoryError(
            f"KV arena exhausted: no free range of {capacity} rows "
            f"({self.free_rows} rows free, fragmented over "
            f"{len(self._free)} ranges)"
        )

    def register(self, start: int, stop: int) -> None:
        """Record ``[start, stop)`` as owned by a live request cache.

        Called by :class:`ArenaKVCache` on construction.  Under
        ``REPRO_SANITIZE`` the new range is checked for overlap against
        every live range — two requests sharing slab rows would silently
        read each other's keys/values.
        """
        sanitizer.guard_disjoint_ranges("KV arena", self._live, (start, stop))
        self._live.append((start, stop))
        _ALLOCATIONS.inc()
        _ROWS_USED.add(stop - start)
        _BYTES_RESIDENT.add((stop - start) * self.row_bytes)
        _BYTES_HIGH_WATER.set_max(_BYTES_RESIDENT.value)

    def release(self, start: int, stop: int) -> None:
        """Return a row range to the free list, coalescing neighbours."""
        if not 0 <= start <= stop <= self.capacity:
            raise ValueError(f"invalid arena range [{start}, {stop})")
        if (start, stop) in self._live:
            self._live.remove((start, stop))
        for free_start, free_stop in self._free:
            if start < free_stop and free_start < stop:
                raise ValueError(
                    f"double free of arena rows [{start}, {stop})"
                )
        _RELEASES.inc()
        _ROWS_USED.add(start - stop)
        _BYTES_RESIDENT.add((start - stop) * self.row_bytes)
        self._free.append((start, stop))
        self._free.sort()
        merged: List[Tuple[int, int]] = []
        for rng_start, rng_stop in self._free:
            if merged and rng_start == merged[-1][1]:
                merged[-1] = (merged[-1][0], rng_stop)
            else:
                merged.append((rng_start, rng_stop))
        self._free = merged


class ArenaKVCache:
    """One request's KV cache as a view into a :class:`BatchArena`.

    Same surface as :class:`~repro.model.kv_cache.KVCache` (``layers``,
    ``length``, ``capacity``, ``truncate``, ``keep_rows``, ``snapshot`` /
    ``restore``) plus ``free()`` for request retirement, mirroring
    :class:`~repro.model.paged_cache.PagedSequenceCache`.
    """

    def __init__(self, arena: BatchArena, start: int, stop: int):
        self.arena = arena
        self.config = arena.config
        self._start = start
        self._stop = stop
        self._freed = False
        arena.register(start, stop)
        self.layers: List[LayerKV] = [
            LayerKV.from_buffers(
                arena._keys[i][start:stop], arena._values[i][start:stop]
            )
            for i in range(arena.config.n_layers)
        ]

    @property
    def row_range(self) -> Tuple[int, int]:
        """This request's ``[start, stop)`` rows in the arena slab."""
        return self._start, self._stop

    @property
    def length(self) -> int:
        return self.layers[0].length

    @property
    def capacity(self) -> int:
        return self._stop - self._start

    def truncate(self, length: int) -> None:
        for layer in self.layers:
            layer.truncate(length)

    def keep_rows(self, base: int, rows: Sequence[int]) -> None:
        _ROWS_COMPACTED.inc(len(rows) * len(self.layers))
        for layer in self.layers:
            layer.keep_rows(base, rows)

    def snapshot(self) -> int:
        return self.length

    def restore(self, snapshot: int) -> None:
        self.truncate(snapshot)

    def free(self) -> None:
        """Return this request's rows to the arena (idempotent)."""
        if self._freed:
            return
        self.arena.release(self._start, self._stop)
        self._freed = True
        for layer in self.layers:
            layer.length = 0
