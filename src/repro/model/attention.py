"""Multi-head self-attention with arbitrary additive masks.

This is the hook tree attention (paper section 4.1) plugs into: the attention
primitive takes an *additive* mask of shape ``(n_query, n_key)`` whose entries
are ``0`` (attend) or ``-inf`` (do not attend).  Sequence decoding passes the
ordinary causal mask; tree-parallel decoding passes the *topology-aware
causal mask* built from the token tree (see :mod:`repro.tree.masks`).
"""

from __future__ import annotations

from typing import Dict, Optional, Sequence, Tuple

import numpy as np

from repro.analysis.sanitizer import tensor_contract
from repro.model import perf
from repro.model.layers import (
    LayerCache,
    linear_backward,
    linear_forward,
    merge_grad,
    stable_softmax,
)
from repro.model.scratch import ScratchArena

NEG_INF = float("-inf")


def _mask_buffer(shape: Tuple[int, int], dtype: str,
                 out: Optional[np.ndarray]) -> np.ndarray:
    """``out`` validated against ``shape``, or a fresh (counted) buffer."""
    if out is None:
        perf.add_mask_alloc(shape[0] * shape[1])
        return np.empty(shape, dtype=dtype)
    if out.shape != shape:
        raise ValueError(f"mask out buffer {out.shape} != expected {shape}")
    return out


class MaskScratch:
    """Persistent per-step attention-mask buffer over a :class:`ScratchArena`.

    The decode loop builds a fresh mask every iteration whose shape creeps
    up as the prefix grows; allocating it anew each step makes the steady
    state allocation-bound.  ``take(rows, cols)`` returns a view of one
    arena-backed buffer.  Pass ``bound=(max_rows, max_cols)`` (typically
    ``(max_seq_len, max_seq_len)``) to allocate the worst case up front, so
    a growing prefix never triggers mid-run reallocation; without a bound
    the buffer grows to the next power of two per dimension.

    Args:
        dtype: Mask element type (the model dtype).
        arena: Arena owning the backing buffer; a private one by default.
        tag: Shape-class key inside the arena (several mask scratches can
            share one arena under distinct tags).
        bound: Optional ``(rows, cols)`` worst case.
    """

    def __init__(self, dtype: str = "float64",
                 arena: Optional[ScratchArena] = None, tag: str = "mask",
                 bound: Optional[Tuple[int, int]] = None):
        self._dtype = dtype
        self._arena = arena if arena is not None else ScratchArena()
        self._tag = tag
        self._bound = bound

    def take(self, rows: int, cols: int) -> np.ndarray:
        """A writable ``(rows, cols)`` view, reusing the buffer if possible."""
        before = self._arena.alloc_events
        view = self._arena.take(self._tag, (rows, cols), self._dtype,
                                bound=self._bound)
        if self._arena.alloc_events != before:
            grown = self._arena.buffer_shape(self._tag, self._dtype)
            perf.add_mask_cells(grown[0] * grown[1])
        return view


def causal_mask(n: int, dtype: str = "float64",
                out: Optional[np.ndarray] = None) -> np.ndarray:
    """Standard lower-triangular causal mask (Equation 4 in the paper).

    Entry ``[j, k]`` is ``0`` when ``j >= k`` (token ``j`` may attend to
    token ``k``) and ``-inf`` otherwise.  Pass ``out`` (an ``(n, n)``
    buffer) to fill in place instead of allocating.
    """
    mask = _mask_buffer((n, n), dtype, out)
    mask[:] = 0.0
    mask[np.triu_indices(n, k=1)] = NEG_INF
    return mask


def cross_mask(n_query: int, n_key: int, query_offset: int,
               dtype: str = "float64",
               out: Optional[np.ndarray] = None) -> np.ndarray:
    """Causal mask for queries appended after ``query_offset`` cached keys.

    Query ``j`` (absolute position ``query_offset + j``) may attend to keys
    ``0 .. query_offset + j``.  Pass ``out`` to fill in place.
    """
    mask = _mask_buffer((n_query, n_key), dtype, out)
    mask[:] = 0.0
    cols = np.arange(n_key)[None, :]
    rows = np.arange(n_query)[:, None] + query_offset
    mask[cols > rows] = NEG_INF
    return mask


@tensor_contract(q={"ndim": 3}, k={"ndim": 3}, v={"ndim": 3},
                 mask={"ndim": 2})
def scaled_dot_attention(
    q: np.ndarray, k: np.ndarray, v: np.ndarray, mask: np.ndarray
) -> np.ndarray:
    """Masked scaled-dot-product attention (inference path, no grad).

    Args:
        q: ``(n_q, h, d_head)`` queries.
        k: ``(n_k, h, d_head)`` keys.
        v: ``(n_k, h, d_head)`` values.
        mask: ``(n_q, n_k)`` additive mask.

    Returns:
        ``(n_q, h, d_head)`` attention outputs.
    """
    d_head = q.shape[-1]
    perf.add_attention(q.shape[1], q.shape[0], k.shape[0], d_head)
    # (h, n_q, n_k) scores
    scores = np.einsum("qhd,khd->hqk", q, k) / np.sqrt(d_head)
    scores = scores + mask[None, :, :]
    weights = stable_softmax(scores, axis=-1)
    return np.einsum("hqk,khd->qhd", weights, v)


@tensor_contract(q={"ndim": 3})
def block_diagonal_attention(
    q: np.ndarray,
    kvs: Sequence[Tuple[np.ndarray, np.ndarray]],
    masks: Sequence[np.ndarray],
    row_offsets: Sequence[int],
    out: Optional[np.ndarray] = None,
) -> np.ndarray:
    """Block-sparse attention: each query block attends only to its own keys.

    The batched-verification score matrix is block-diagonal by construction
    (a request's tree tokens may never see another request's keys), so
    instead of one dense ``(Σn_q, Σn_k)`` pass whose cross-request blocks
    are all ``-inf``, compute one :func:`scaled_dot_attention` per request
    block against that request's keys only.  Score work drops from
    ``O((Σn_q)·(Σn_k))`` to ``O(Σ n_qᵢ·n_kᵢ)`` and no combined mask or
    concatenated K/V tensor is ever materialized.

    Args:
        q: ``(Σn_q, h, d_head)`` queries for the whole batch, request
            blocks contiguous in batch order.
        kvs: Per-request ``(keys, values)`` pairs, each
            ``(n_kᵢ, h, d_head)`` — typically zero-copy cache views.
        masks: Per-request ``(n_qᵢ, n_kᵢ)`` additive masks.
        row_offsets: Start row of each request's query block in ``q``
            (``len(row_offsets) == len(kvs) + 1``; last entry is ``Σn_q``).
        out: Optional ``(Σn_q, h, d_head)`` output buffer (steady-state
            callers pass a reused scratch view).

    Returns:
        ``(Σn_q, h, d_head)`` attention outputs.
    """
    if out is None:
        out = np.empty_like(q)
    elif out.shape != q.shape:
        raise ValueError(f"out buffer {out.shape} != queries {q.shape}")
    for i, ((keys, values), mask) in enumerate(zip(kvs, masks)):
        lo, hi = row_offsets[i], row_offsets[i + 1]
        out[lo:hi] = scaled_dot_attention(q[lo:hi], keys, values, mask)
    return out


@tensor_contract(x={"ndim": 2})
def split_heads(x: np.ndarray, n_heads: int) -> np.ndarray:
    """Reshape ``(n, d_model)`` to ``(n, h, d_head)``."""
    n, d = x.shape
    return x.reshape(n, n_heads, d // n_heads)


@tensor_contract(x={"ndim": 3})
def merge_heads(x: np.ndarray) -> np.ndarray:
    """Inverse of :func:`split_heads`."""
    n, h, dh = x.shape
    return x.reshape(n, h * dh)


# -- training path (forward + backward over a full sequence) --------------------


@tensor_contract(x={"ndim": 2}, mask={"ndim": 2})
def mha_forward(
    x: np.ndarray,
    params: Dict[str, np.ndarray],
    prefix: str,
    n_heads: int,
    mask: np.ndarray,
    positions: np.ndarray = None,
    use_rope: bool = False,
) -> Tuple[np.ndarray, LayerCache]:
    """Full multi-head self-attention over a sequence, differentiable.

    Args:
        x: ``(n, d_model)`` input activations.
        params: parameter mapping (a :class:`ParameterStore` works).
        prefix: name prefix, e.g. ``"layer0.attn"``.
        n_heads: number of heads.
        mask: ``(n, n)`` additive mask.
        positions: ``(n,)`` absolute positions (required for RoPE).
        use_rope: apply rotary embeddings to queries and keys.
    """
    q, q_cache = linear_forward(x, params[f"{prefix}.wq"], params[f"{prefix}.bq"])
    k, k_cache = linear_forward(x, params[f"{prefix}.wk"], params[f"{prefix}.bk"])
    v, v_cache = linear_forward(x, params[f"{prefix}.wv"], params[f"{prefix}.bv"])
    qh, kh, vh = (split_heads(t, n_heads) for t in (q, k, v))
    if use_rope:
        from repro.model.rope import rope_rotate

        if positions is None:
            raise ValueError("RoPE attention requires explicit positions")
        qh = rope_rotate(qh, positions)
        kh = rope_rotate(kh, positions)
    d_head = qh.shape[-1]
    scores = np.einsum("qhd,khd->hqk", qh, kh) / np.sqrt(d_head)
    scores = scores + mask[None, :, :]
    weights = stable_softmax(scores, axis=-1)
    attn = np.einsum("hqk,khd->qhd", weights, vh)
    merged = merge_heads(attn)
    out, o_cache = linear_forward(
        merged, params[f"{prefix}.wo"], params[f"{prefix}.bo"]
    )
    cache = (q_cache, k_cache, v_cache, o_cache, qh, kh, vh, weights, n_heads,
             positions if use_rope else None)
    return out, cache


@tensor_contract(grad={"ndim": 2})
def mha_backward(
    grad: np.ndarray,
    cache: LayerCache,
    prefix: str,
    grads: Dict[str, np.ndarray],
) -> np.ndarray:
    """Backward for :func:`mha_forward`; accumulates into ``grads``.

    Returns the gradient w.r.t. the layer input ``x``.
    """
    (q_cache, k_cache, v_cache, o_cache, qh, kh, vh, weights, n_heads,
     rope_positions) = cache
    d_head = qh.shape[-1]

    dmerged, dwo, dbo = linear_backward(grad, o_cache)
    merge_grad(grads, f"{prefix}.wo", dwo)
    merge_grad(grads, f"{prefix}.bo", dbo)

    dattn = dmerged.reshape(dmerged.shape[0], n_heads, d_head)
    # attn = weights @ vh
    dweights = np.einsum("qhd,khd->hqk", dattn, vh)
    dvh = np.einsum("hqk,qhd->khd", weights, dattn)
    # softmax backward (rows of weights sum to 1)
    dscores = weights * (dweights - (dweights * weights).sum(axis=-1, keepdims=True))
    dscores /= np.sqrt(d_head)
    dqh = np.einsum("hqk,khd->qhd", dscores, kh)
    dkh = np.einsum("hqk,qhd->khd", dscores, qh)

    if rope_positions is not None:
        # The rotation is orthogonal: its adjoint is the inverse rotation.
        from repro.model.rope import rope_rotate

        dqh = rope_rotate(dqh, rope_positions, inverse=True)
        dkh = rope_rotate(dkh, rope_positions, inverse=True)

    dq = merge_heads(dqh)
    dk = merge_heads(dkh)
    dv = merge_heads(dvh)

    dx_q, dwq, dbq = linear_backward(dq, q_cache)
    dx_k, dwk, dbk = linear_backward(dk, k_cache)
    dx_v, dwv, dbv = linear_backward(dv, v_cache)
    merge_grad(grads, f"{prefix}.wq", dwq)
    merge_grad(grads, f"{prefix}.bq", dbq)
    merge_grad(grads, f"{prefix}.wk", dwk)
    merge_grad(grads, f"{prefix}.bk", dbk)
    merge_grad(grads, f"{prefix}.wv", dwv)
    merge_grad(grads, f"{prefix}.bv", dbv)
    return dx_q + dx_k + dx_v
