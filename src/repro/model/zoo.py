"""Model zoo: trained LLM/SSM pairs with on-disk weight caching.

The paper's model pairs (OPT-175B with OPT-125M, LLaMA-7B with LLaMA-68M)
align because they were pre-trained on the same corpus.  The zoo reproduces
that recipe end-to-end at toy scale: train a 'large' model on a Markov
corpus, then KL-distill genuinely smaller students toward it.  Weights are
cached as ``.npz`` checkpoints so examples and benchmarks pay the training
cost once.
"""

from __future__ import annotations

import hashlib
import os
from dataclasses import dataclass, field, fields, is_dataclass
from typing import List, Optional, Tuple

from repro.model.config import ModelConfig
from repro.model.parameters import ParameterStore
from repro.model.trainer import Trainer, TrainingConfig
from repro.model.transformer import TransformerLM
from repro.workloads.corpus import MarkovCorpus

#: Version tag baked into every cache key and checkpoint filename.  Bump it
#: whenever the key scheme, the spec's field semantics, or the trained
#: weight layout changes: old checkpoints then simply stop matching any
#: lookup path instead of being loaded into a mismatched recipe.
ZOO_SCHEMA_VERSION = 2

#: Spec fields that determine each role's trained weights.  The LLM never
#: sees the student's architecture or distillation length, so specs that
#: differ only in SSM fields share one teacher checkpoint — a speculator
#: pool trains its LLM exactly once.
_ROLE_FIELDS = {
    "llm": ("corpus_branching", "corpus_seed", "llm_config", "llm_steps",
            "seed", "vocab_size"),
}


def _canonical_value(value) -> str:
    """A stable textual form for cache-key digests.

    ``repr`` is explicitly avoided: dataclass reprs follow declaration
    order (silently re-keying on field reorder) and float repr depends on
    the shortest-roundtrip algorithm.  Dataclasses render as sorted
    ``field=value`` pairs, floats as 17-significant-digit decimals.
    """
    if is_dataclass(value) and not isinstance(value, type):
        inner = ",".join(
            f"{name}={_canonical_value(getattr(value, name))}"
            for name in sorted(f.name for f in fields(value))
        )
        return f"{type(value).__name__}({inner})"
    if isinstance(value, float):
        return format(value, ".17g")
    if isinstance(value, (list, tuple)):
        return "[" + ",".join(_canonical_value(v) for v in value) + "]"
    return repr(value)


@dataclass(frozen=True)
class ZooSpec:
    """Recipe for one trained LLM + distilled SSM pair.

    Attributes:
        vocab_size: Shared vocabulary size.
        llm_config: Architecture of the large model.
        ssm_config: Architecture of the small model (same vocab).
        corpus_branching: Markov corpus branching factor (lower = more
            predictable text = higher acceptance rates).
        corpus_seed: Corpus seed.
        llm_steps: LLM pre-training steps.
        distill_steps: SSM distillation steps.
        seed: Weight-init seed.
    """

    vocab_size: int = 64
    llm_config: ModelConfig = field(default_factory=lambda: ModelConfig(
        vocab_size=64, d_model=48, n_layers=3, n_heads=4, max_seq_len=128,
        name="zoo-llm",
    ))
    ssm_config: ModelConfig = field(default_factory=lambda: ModelConfig(
        vocab_size=64, d_model=16, n_layers=1, n_heads=2, max_seq_len=128,
        name="zoo-ssm",
    ))
    corpus_branching: int = 4
    corpus_seed: int = 99
    llm_steps: int = 300
    distill_steps: int = 200
    seed: int = 0

    def __post_init__(self) -> None:
        if self.llm_config.vocab_size != self.vocab_size:
            raise ValueError("llm_config vocab must match spec vocab")
        if self.ssm_config.vocab_size != self.vocab_size:
            raise ValueError("ssm_config vocab must match spec vocab")

    def cache_key(self, role: Optional[str] = None) -> str:
        """Deterministic key for the on-disk checkpoint.

        Digests an explicit sorted ``field=value`` listing (plus
        :data:`ZOO_SCHEMA_VERSION`) rather than ``repr(self)``, so the key
        cannot shift with dataclass field order or float repr, and a field
        rename changes the key instead of silently aliasing.  With a
        ``role`` in :data:`_ROLE_FIELDS`, only the fields that determine
        that role's weights contribute — every student distilled from the
        same recipe shares its teacher's ``"llm"`` key.
        """
        names = _ROLE_FIELDS.get(role) or sorted(
            f.name for f in fields(self)
        )
        parts = [f"schema={ZOO_SCHEMA_VERSION}", f"role={role or 'pair'}"]
        parts.extend(
            f"{name}={_canonical_value(getattr(self, name))}"
            for name in names
        )
        digest = hashlib.blake2b("|".join(parts).encode(), digest_size=8)
        return digest.hexdigest()


class ModelZoo:
    """Builds and caches trained model pairs.

    Args:
        cache_dir: Directory for ``.npz`` checkpoints (created on demand);
            ``None`` disables disk caching (always retrains).
    """

    def __init__(self, cache_dir: Optional[str] = None):
        self.cache_dir = cache_dir

    def corpus(self, spec: ZooSpec) -> MarkovCorpus:
        """The spec's training corpus."""
        return MarkovCorpus(
            vocab_size=spec.vocab_size,
            branching=spec.corpus_branching,
            seed=spec.corpus_seed,
        )

    def trained_pair(self, spec: ZooSpec) -> Tuple[TransformerLM,
                                                   TransformerLM]:
        """A trained LLM and a distilled SSM for ``spec`` (cached)."""
        llm = self._load_or_train_llm(spec)
        ssm = self._load_or_distill_ssm(spec, llm)
        return llm, ssm

    def trained_llm(self, spec: ZooSpec) -> TransformerLM:
        """Just the trained teacher (cached under its role-specific key).

        Pool construction uses this with :meth:`distilled_ssm` so N member
        specs sharing a teacher recipe train the LLM once.
        """
        return self._load_or_train_llm(spec)

    def distilled_ssm(self, spec: ZooSpec,
                      llm: Optional[TransformerLM] = None) -> TransformerLM:
        """A distilled student for ``spec`` (cached), given its teacher."""
        teacher = llm if llm is not None else self._load_or_train_llm(spec)
        return self._load_or_distill_ssm(spec, teacher)

    # -- internals -------------------------------------------------------------------

    def _checkpoint_path(self, spec: ZooSpec, role: str) -> Optional[str]:
        if self.cache_dir is None:
            return None
        # The filename embeds the schema version twice over (the prefix and
        # the key digest), so checkpoints written under a stale schema never
        # match a lookup — they are ignored on load and left on disk rather
        # than deserialized into a mismatched recipe.
        return os.path.join(
            self.cache_dir,
            f"zoo-v{ZOO_SCHEMA_VERSION}-{spec.cache_key(role)}-{role}.npz",
        )

    def _load_or_train_llm(self, spec: ZooSpec) -> TransformerLM:
        path = self._checkpoint_path(spec, "llm")
        if path and os.path.exists(path):
            return TransformerLM(spec.llm_config,
                                 params=ParameterStore.load(path))
        model = TransformerLM(spec.llm_config, seed=spec.seed)
        corpus = self.corpus(spec)
        trainer = Trainer(
            model,
            TrainingConfig(max_steps=spec.llm_steps, learning_rate=3e-3),
        )
        trainer.train_lm(corpus.sample_many(48, 40))
        self._save(model, path)
        return model

    def _load_or_distill_ssm(self, spec: ZooSpec,
                             llm: TransformerLM) -> TransformerLM:
        path = self._checkpoint_path(spec, "ssm")
        if path and os.path.exists(path):
            return TransformerLM(spec.ssm_config,
                                 params=ParameterStore.load(path))
        model = TransformerLM(spec.ssm_config, seed=spec.seed + 1)
        corpus = self.corpus(spec)
        trainer = Trainer(
            model,
            TrainingConfig(max_steps=spec.distill_steps, learning_rate=3e-3),
        )
        trainer.distill(llm, corpus.sample_many(48, 40))
        self._save(model, path)
        return model

    def _save(self, model: TransformerLM, path: Optional[str]) -> None:
        if path is None:
            return
        os.makedirs(os.path.dirname(path), exist_ok=True)
        model.params.save(path)
