"""Model zoo: trained LLM/SSM pairs with on-disk weight caching.

The paper's model pairs (OPT-175B with OPT-125M, LLaMA-7B with LLaMA-68M)
align because they were pre-trained on the same corpus.  The zoo reproduces
that recipe end-to-end at toy scale: train a 'large' model on a Markov
corpus, then KL-distill genuinely smaller students toward it.  Weights are
cached as ``.npz`` checkpoints so examples and benchmarks pay the training
cost once.
"""

from __future__ import annotations

import hashlib
import os
from dataclasses import dataclass, field
from typing import List, Optional, Tuple

from repro.model.config import ModelConfig
from repro.model.parameters import ParameterStore
from repro.model.trainer import Trainer, TrainingConfig
from repro.model.transformer import TransformerLM
from repro.workloads.corpus import MarkovCorpus


@dataclass(frozen=True)
class ZooSpec:
    """Recipe for one trained LLM + distilled SSM pair.

    Attributes:
        vocab_size: Shared vocabulary size.
        llm_config: Architecture of the large model.
        ssm_config: Architecture of the small model (same vocab).
        corpus_branching: Markov corpus branching factor (lower = more
            predictable text = higher acceptance rates).
        corpus_seed: Corpus seed.
        llm_steps: LLM pre-training steps.
        distill_steps: SSM distillation steps.
        seed: Weight-init seed.
    """

    vocab_size: int = 64
    llm_config: ModelConfig = field(default_factory=lambda: ModelConfig(
        vocab_size=64, d_model=48, n_layers=3, n_heads=4, max_seq_len=128,
        name="zoo-llm",
    ))
    ssm_config: ModelConfig = field(default_factory=lambda: ModelConfig(
        vocab_size=64, d_model=16, n_layers=1, n_heads=2, max_seq_len=128,
        name="zoo-ssm",
    ))
    corpus_branching: int = 4
    corpus_seed: int = 99
    llm_steps: int = 300
    distill_steps: int = 200
    seed: int = 0

    def __post_init__(self) -> None:
        if self.llm_config.vocab_size != self.vocab_size:
            raise ValueError("llm_config vocab must match spec vocab")
        if self.ssm_config.vocab_size != self.vocab_size:
            raise ValueError("ssm_config vocab must match spec vocab")

    def cache_key(self) -> str:
        """Deterministic key for the on-disk checkpoint."""
        digest = hashlib.blake2b(repr(self).encode(), digest_size=8)
        return digest.hexdigest()


class ModelZoo:
    """Builds and caches trained model pairs.

    Args:
        cache_dir: Directory for ``.npz`` checkpoints (created on demand);
            ``None`` disables disk caching (always retrains).
    """

    def __init__(self, cache_dir: Optional[str] = None):
        self.cache_dir = cache_dir

    def corpus(self, spec: ZooSpec) -> MarkovCorpus:
        """The spec's training corpus."""
        return MarkovCorpus(
            vocab_size=spec.vocab_size,
            branching=spec.corpus_branching,
            seed=spec.corpus_seed,
        )

    def trained_pair(self, spec: ZooSpec) -> Tuple[TransformerLM,
                                                   TransformerLM]:
        """A trained LLM and a distilled SSM for ``spec`` (cached)."""
        llm = self._load_or_train_llm(spec)
        ssm = self._load_or_distill_ssm(spec, llm)
        return llm, ssm

    # -- internals -------------------------------------------------------------------

    def _checkpoint_path(self, spec: ZooSpec, role: str) -> Optional[str]:
        if self.cache_dir is None:
            return None
        return os.path.join(
            self.cache_dir, f"zoo-{spec.cache_key()}-{role}.npz"
        )

    def _load_or_train_llm(self, spec: ZooSpec) -> TransformerLM:
        path = self._checkpoint_path(spec, "llm")
        if path and os.path.exists(path):
            return TransformerLM(spec.llm_config,
                                 params=ParameterStore.load(path))
        model = TransformerLM(spec.llm_config, seed=spec.seed)
        corpus = self.corpus(spec)
        trainer = Trainer(
            model,
            TrainingConfig(max_steps=spec.llm_steps, learning_rate=3e-3),
        )
        trainer.train_lm(corpus.sample_many(48, 40))
        self._save(model, path)
        return model

    def _load_or_distill_ssm(self, spec: ZooSpec,
                             llm: TransformerLM) -> TransformerLM:
        path = self._checkpoint_path(spec, "ssm")
        if path and os.path.exists(path):
            return TransformerLM(spec.ssm_config,
                                 params=ParameterStore.load(path))
        model = TransformerLM(spec.ssm_config, seed=spec.seed + 1)
        corpus = self.corpus(spec)
        trainer = Trainer(
            model,
            TrainingConfig(max_steps=spec.distill_steps, learning_rate=3e-3),
        )
        trainer.distill(llm, corpus.sample_many(48, 40))
        self._save(model, path)
        return model

    def _save(self, model: TransformerLM, path: Optional[str]) -> None:
        if path is None:
            return
        os.makedirs(os.path.dirname(path), exist_ok=True)
        model.params.save(path)
