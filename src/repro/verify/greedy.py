"""``VerifyGreedy`` (Algorithm 2): greedy token tree verification.

Walk the tree from the root; at each node ``u`` the LLM's greedy output
``𝒪(u)`` is compared against ``u``'s children.  A matching child is accepted
and the walk descends; on the first miss (or at a leaf) ``𝒪(u)`` itself is
appended as the bonus token and verification stops.  The emitted sequence is
therefore *exactly* the one incremental greedy decoding would produce —
SpecInfer's losslessness guarantee for greedy decoding.
"""

from __future__ import annotations

from repro.tree.token_tree import TokenTree
from repro.verify.decode import TreeDecodeOutput
from repro.verify.result import VerificationResult


def verify_greedy(output: TreeDecodeOutput, tree: TokenTree) -> VerificationResult:
    """Verify ``tree`` against greedy LLM outputs.

    Args:
        output: Tree-parallel decode output (𝒪 in Algorithm 2).
        tree: The speculated token tree 𝒩.

    Returns:
        A :class:`VerificationResult`; ``accepted_tokens`` are the verified
        tokens 𝒱 (accepted speculated tokens + one bonus token).
    """
    result = VerificationResult()
    u = 0
    result.accepted_nodes.append(u)
    while True:
        llm_token = output.greedy_token_for_node(u)
        result.num_candidates_considered += 1
        matched = -1
        for child in tree.nodes[u].children:
            if tree.nodes[child].token == llm_token:
                matched = child
                break
        if matched == -1:
            result.accepted_tokens.append(llm_token)
            result.bonus_token = llm_token
            return result
        result.accepted_tokens.append(llm_token)
        result.accepted_nodes.append(matched)
        u = matched
