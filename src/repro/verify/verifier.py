"""Token tree verifier façade: decode, verify, compact the KV cache.

Ties together the pieces of paper section 4 into the operation the engine
calls once per speculation/verification iteration:

1. tree-parallel decode of the speculated tree (section 4.2),
2. greedy / MSS / naive verification (section 4.3),
3. KV-cache compaction: only the accepted root-to-node path's keys and
   values survive, positioned as the new verified suffix (Figure 4's
   depth-first cache update).
"""

from __future__ import annotations

from typing import Optional

import numpy as np

from repro.model.attention import MaskScratch
from repro.model.kv_cache import KVCache
from repro.model.sampling import SamplingConfig
from repro.model.scratch import ScratchArena
from repro.model.transformer import TransformerLM
from repro.tree.token_tree import TokenTree
from repro.verify.decode import TreeDecodeOutput, tree_parallel_decode
from repro.verify.greedy import verify_greedy
from repro.verify.naive import verify_naive_sampling
from repro.verify.precision import apply_precision, validate_precision
from repro.verify.result import VerificationResult
from repro.verify.stochastic import verify_stochastic


class TokenTreeVerifier:
    """Verifies speculated token trees against an LLM.

    Args:
        model: The large language model used as verifier.
        sampling: Decoding configuration; ``sampling.greedy`` selects
            ``VerifyGreedy``, otherwise MSS (or naive sampling when
            ``use_naive_sampling=True``, for the Table 3 baseline).
        rng: Randomness for stochastic verification.
        use_naive_sampling: Swap MSS for the naive baseline.
        reuse_scratch: Reuse persistent mask/QKV/attention/logits buffers
            across iterations (allocation-free steady state).  ``False``
            runs the allocating path — bit-identical results, used by the
            scratch on/off equivalence suite.
        precision: ``"fp32"`` (exact), ``"fp16"`` or ``"int8"`` — simulate
            reduced-precision draft scoring.  Reduced precision requires a
            greedy sampling config and commits bit-identical tokens (see
            :mod:`repro.verify.precision`).
    """

    def __init__(
        self,
        model: TransformerLM,
        sampling: Optional[SamplingConfig] = None,
        rng: Optional[np.random.Generator] = None,
        use_naive_sampling: bool = False,
        reuse_scratch: bool = True,
        precision: str = "fp32",
    ):
        self.model = model
        self.sampling = sampling or SamplingConfig(greedy=True)
        self.rng = rng or np.random.default_rng(0)
        self.use_naive_sampling = use_naive_sampling
        validate_precision(precision, self.sampling.greedy)
        self.precision = precision
        self.reuse_scratch = reuse_scratch
        if reuse_scratch:
            max_len = model.config.max_seq_len
            self._arena: Optional[ScratchArena] = ScratchArena()
            self._mask_scratch: Optional[MaskScratch] = MaskScratch(
                model.config.dtype, arena=self._arena, tag="tree_mask",
                bound=(0, max_len),
            )
        else:
            self._arena = None
            self._mask_scratch = None

    def _tree_mask_out(self, tree: TokenTree,
                       prefix_len: int) -> Optional[np.ndarray]:
        if self._mask_scratch is None:
            return None
        n = len(tree)
        return self._mask_scratch.take(n, prefix_len + n)

    def verify_step(
        self, tree: TokenTree, cache: KVCache
    ) -> VerificationResult:
        """Run one decode+verify iteration and compact ``cache``.

        On entry ``cache`` holds the verified prefix (the tree root's token
        is *not* yet cached).  On exit the cache additionally holds the
        accepted path — root plus accepted speculated tokens — so its length
        grows by ``len(result.accepted_nodes)``.  The bonus token is *not*
        cached; it seeds the next iteration's tree root.
        """
        result, _ = self.decode_and_verify(tree, cache)
        return result

    def decode_and_verify(
        self, tree: TokenTree, cache: KVCache
    ) -> tuple:
        """Like :meth:`verify_step` but also returns the raw decode output."""
        prefix_len = cache.length
        output = tree_parallel_decode(
            self.model, cache, tree,
            mask_out=self._tree_mask_out(tree, prefix_len),
            scratch=self._arena,
        )
        if self.precision != "fp32":
            output = TreeDecodeOutput(
                lin=output.lin,
                logits=apply_precision(output.logits, self.precision),
                prefix_len=output.prefix_len,
            )
        result = self._verify(output, tree)
        accepted_slots = [output.lin.slot_of[n] for n in result.accepted_nodes]
        cache.keep_rows(prefix_len, accepted_slots)
        return result, output

    def _verify(
        self, output: TreeDecodeOutput, tree: TokenTree
    ) -> VerificationResult:
        if self.sampling.greedy:
            return verify_greedy(output, tree)
        if self.use_naive_sampling:
            return verify_naive_sampling(output, tree, self.sampling, self.rng)
        return verify_stochastic(output, tree, self.sampling, self.rng)
