"""Naive-sampling verification baseline (paper section 4.3, Table 3).

At each node ``u`` the next token is sampled *directly* from the LLM's
distribution ``P(· | u, LLM)``.  If the sampled token happens to match one of
``u``'s children, the walk descends (the speculated token was "verified");
otherwise the sampled token is emitted as the bonus token and verification
stops.  This trivially preserves the LLM's distribution but wastes the
information in the SSM proposals — Theorem 4.3 shows MSS rejects uniformly
less often, and Table 3 quantifies the gap at 1.26-1.28x verified tokens.
"""

from __future__ import annotations

import numpy as np

from repro.model.sampling import SamplingConfig, sample_from_probs
from repro.tree.token_tree import TokenTree
from repro.verify.decode import TreeDecodeOutput
from repro.verify.result import VerificationResult


def verify_naive_sampling(
    output: TreeDecodeOutput,
    tree: TokenTree,
    sampling: SamplingConfig,
    rng: np.random.Generator,
) -> VerificationResult:
    """Verify ``tree`` by sampling from the LLM and checking membership."""
    result = VerificationResult()
    u = 0
    result.accepted_nodes.append(u)
    while True:
        probs = output.distribution_for_node(u, sampling)
        token = sample_from_probs(probs, rng)
        result.num_candidates_considered += 1
        matched = -1
        for child in tree.nodes[u].children:
            if tree.nodes[child].token == token:
                matched = child
                break
        result.accepted_tokens.append(token)
        if matched == -1:
            result.bonus_token = token
            if tree.nodes[u].children:
                result.num_rejections += 1
            return result
        result.accepted_nodes.append(matched)
        u = matched
