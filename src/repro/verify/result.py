"""Verification outcome record shared by all verification algorithms."""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List


@dataclass
class VerificationResult:
    """Outcome of verifying one speculated token tree.

    Attributes:
        accepted_tokens: The verified tokens 𝒱 appended this step, i.e. the
            accepted *speculated* tokens followed by the one bonus token the
            LLM contributes (Algorithm 2 always appends at least one token).
        accepted_nodes: Tree-node indices of the accepted root-to-node path,
            root (index 0) included.  ``len(accepted_nodes) - 1`` speculated
            tokens were accepted.
        bonus_token: The final token of ``accepted_tokens`` — produced by the
            LLM itself (greedy argmax, residual sample, or direct sample),
            never taken from the tree.
        num_candidates_considered: How many tree nodes the verifier examined.
        num_rejections: Stochastic only — candidate rejections before
            acceptance or fallback.
    """

    accepted_tokens: List[int] = field(default_factory=list)
    accepted_nodes: List[int] = field(default_factory=list)
    bonus_token: int = -1
    num_candidates_considered: int = 0
    num_rejections: int = 0

    @property
    def num_accepted_speculated(self) -> int:
        """Speculated tokens accepted (excludes the bonus token)."""
        return len(self.accepted_nodes) - 1

    @property
    def tokens_per_step(self) -> int:
        """Total tokens emitted by this verification step (>= 1)."""
        return len(self.accepted_tokens)

    def validate(self) -> None:
        """Internal consistency checks (used by tests)."""
        if not self.accepted_nodes or self.accepted_nodes[0] != 0:
            raise ValueError("accepted path must start at the root (node 0)")
        if len(self.accepted_tokens) != len(self.accepted_nodes):
            raise ValueError(
                "accepted_tokens must be one bonus token plus the accepted "
                "speculated tokens: expected "
                f"{len(self.accepted_nodes)} tokens, got {len(self.accepted_tokens)}"
            )
        if self.accepted_tokens and self.accepted_tokens[-1] != self.bonus_token:
            raise ValueError("last accepted token must be the bonus token")
