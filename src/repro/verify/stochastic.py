"""``VerifyStochastic`` (Algorithm 2): multi-step speculative sampling (MSS).

At each tree node ``u`` the verifier holds the LLM's next-token distribution
``P(x | u, LLM)`` and tries ``u``'s children in uniformly random order.  A
child ``x_s`` (proposed by SSM ``s``) is accepted with probability
``min(1, P(x_s | u, LLM) / P(x_s | u, SSM_s))``; on rejection the LLM
distribution is replaced by the normalized residual
``norm(max(0, P(· | u, LLM) - P(· | u, SSM_s)))`` and the child is removed
from consideration.  If every child is rejected (or ``u`` is a leaf), the
next token is sampled from the current (residual) LLM distribution and
verification ends.

Theorem 4.2: the emitted token follows exactly the LLM's stochastic-decoding
distribution.  Theorem 4.3: MSS rejects less often than the naive-sampling
baseline (:mod:`repro.verify.naive`).  Both are checked statistically in the
test suite.
"""

from __future__ import annotations

from typing import Optional

import numpy as np

from repro.analysis import sanitizer
from repro.model.sampling import SamplingConfig, sample_from_probs
from repro.tree.token_tree import TokenTree
from repro.verify.decode import TreeDecodeOutput
from repro.verify.result import VerificationResult


def _proposal_distribution(
    tree: TokenTree, u: int, child: int
) -> Optional[np.ndarray]:
    """The SSM distribution backing ``child`` at node ``u``.

    A child may have been proposed by several SSMs (merge-based trees); the
    lowest ssm id that actually recorded a proposal at ``u`` is used so the
    ratio and the residual subtraction are consistent with each other.
    """
    proposals = tree.nodes[u].proposals
    for ssm_id in sorted(tree.nodes[child].ssm_ids):
        if ssm_id in proposals:
            return proposals[ssm_id]
    return None


def verify_stochastic(
    output: TreeDecodeOutput,
    tree: TokenTree,
    sampling: SamplingConfig,
    rng: np.random.Generator,
) -> VerificationResult:
    """Verify ``tree`` against stochastic LLM outputs using MSS.

    Args:
        output: Tree-parallel decode output (per-node LLM logits).
        tree: Speculated token tree; nodes must carry SSM ``proposals`` for
            every expanded node (see :class:`repro.tree.token_tree.TreeNode`).
        sampling: Stochastic decoding configuration (temperature/top-k/top-p).
        rng: Source of randomness (acceptance tests and fallback samples).

    Returns:
        A :class:`VerificationResult` whose final token was sampled from a
        distribution provably equal to the LLM's (Theorem 4.2).
    """
    result = VerificationResult()
    u = 0
    result.accepted_nodes.append(u)
    while True:
        llm_probs = output.distribution_for_node(u, sampling)
        sanitizer.guard_simplex("MSS llm_probs", llm_probs)
        children = list(tree.nodes[u].children)
        descended = False
        while children:
            pick = int(rng.integers(len(children)))
            child = children.pop(pick)
            token = tree.nodes[child].token
            result.num_candidates_considered += 1
            ssm_probs = _proposal_distribution(tree, u, child)
            if ssm_probs is not None:
                sanitizer.guard_simplex("MSS ssm_probs", ssm_probs)
            if ssm_probs is None:
                # No recorded proposal (hand-built tree): treat the child as
                # a deterministic proposal, accepted iff the LLM could emit it.
                accept_prob = min(1.0, float(llm_probs[token]))
                residual_source = None
            else:
                denom = float(ssm_probs[token])
                if denom <= 0.0:
                    # The SSM claims it could never have proposed this token;
                    # reject outright (ratio is 0).
                    accept_prob = 0.0
                else:
                    accept_prob = min(1.0, float(llm_probs[token]) / denom)
                residual_source = ssm_probs
            if float(rng.uniform()) <= accept_prob:
                result.accepted_tokens.append(token)
                result.accepted_nodes.append(child)
                u = child
                descended = True
                break
            result.num_rejections += 1
            if residual_source is not None:
                llm_probs = _normalized_residual(llm_probs, residual_source)
            else:
                llm_probs = _excluding_token(llm_probs, token)
        if descended:
            continue
        # All children rejected (or leaf): sample from the residual.
        bonus = sample_from_probs(llm_probs, rng)
        result.accepted_tokens.append(bonus)
        result.bonus_token = bonus
        return result


def _normalized_residual(
    llm_probs: np.ndarray, ssm_probs: np.ndarray
) -> np.ndarray:
    """``norm(max(0, P_LLM - P_SSM))`` with a safe fallback.

    If the residual is identically zero (the SSM distribution dominates the
    LLM's everywhere — only possible with numerical coincidence), fall back
    to the unmodified LLM distribution, which keeps sampling well-defined
    without affecting the theorem's regime.
    """
    residual = np.maximum(0.0, llm_probs - ssm_probs)
    total = residual.sum()
    if total <= 1e-300:
        return llm_probs
    return residual / total


def _excluding_token(probs: np.ndarray, token: int) -> np.ndarray:
    """Remove a single token's mass and renormalize (proposal-free children)."""
    out = probs.copy()  # lint: allow-alloc cold fallback, proposal-free (hand-built) trees only
    out[token] = 0.0
    total = out.sum()
    if total <= 1e-300:
        return probs
    return out / total
