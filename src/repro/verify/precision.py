"""Simulated reduced-precision draft scoring with bit-exact greedy accept.

Real speculative-decoding deployments score draft tokens with the target
model running in fp16 (or a quantized int8 kernel) while the paper's
correctness argument is stated over exact distributions.  For *greedy*
verification the gap can be closed exactly: greedy accept/reject consumes
only the per-row argmax of the verifier's logits (see
:func:`repro.verify.greedy.verify_greedy`), so any rescoring that provably
preserves every row's argmax commits bit-identical tokens.

This module simulates reduced precision on the NumPy substrate by
round-tripping logits through the target format and then applying an
**argmax-stability guard**:

For a logits row ``x`` and its quantized image ``q`` with per-element error
bound ``e = max_i |q_i - x_i|``, let ``m = argmax(q)`` and ``gap`` be the
difference between the largest and second-largest entries of ``q``.  If
``gap > 2e`` then for every ``j != m`` (using ``q_m >= q_j + gap``)::

    x_m >= q_m - e >= q_j + gap - e > q_j + e >= x_j

so ``argmax(x) = m`` is unique and equals ``argmax(q)`` — the quantized row
is *provably* argmax-equivalent to the fp32 row.  Rows failing the guard
(near-ties, where quantization genuinely could flip the winner) fall back
to the original fp32 row.  Either way every row handed to greedy
verification has exactly the fp32 argmax, so the committed tokens are
bit-identical by construction.  The property test in
``tests/verify/test_precision.py`` hammers this over adversarial near-tie
logits.

Stochastic verification consumes full distributions, not argmaxes, so no
such guard exists; requesting reduced precision there raises.
"""

from __future__ import annotations

import numpy as np

from repro.obs import REGISTRY

#: Supported precision simulations for verifier draft scoring.
PRECISIONS = ("fp32", "fp16", "int8")

#: Rows rescored at reduced precision (guard passed, quantized row kept).
ROWS_QUANTIZED = REGISTRY.counter("repro.verify.precision_rows_quantized")
#: Rows restored to fp32 because the argmax-stability guard failed.
ROWS_FALLBACK = REGISTRY.counter("repro.verify.precision_rows_fallback")


def validate_precision(precision: str, greedy: bool) -> None:
    """Reject unknown precisions and non-greedy reduced-precision configs."""
    if precision not in PRECISIONS:
        raise ValueError(
            f"precision must be one of {PRECISIONS}, got {precision!r}"
        )
    if precision != "fp32" and not greedy:
        raise ValueError(
            "reduced-precision draft scoring is only bit-exact under greedy "
            "verification (stochastic accept consumes full distributions); "
            f"got precision={precision!r} with a stochastic sampling config"
        )


# lint: allow-contract logits rank is polymorphic ((..., vocab)) by design
def quantize_fp16(logits: np.ndarray) -> np.ndarray:
    """Round-trip through IEEE half precision (simulated fp16 scoring)."""
    return logits.astype(np.float16).astype(np.float64)


# lint: allow-contract logits rank is polymorphic ((..., vocab)) by design
def quantize_int8(logits: np.ndarray) -> np.ndarray:
    """Per-row symmetric int8 quantization (scale = max|row| / 127)."""
    scale = np.abs(logits).max(axis=-1, keepdims=True) / 127.0
    # All-zero rows quantize to themselves; avoid 0/0.
    scale = np.where(scale == 0.0, 1.0, scale)
    q = np.clip(np.round(logits / scale), -127, 127)
    return q * scale


# lint: allow-contract logits rank is polymorphic ((..., vocab)); rows reduced along the last axis
def apply_precision(logits: np.ndarray, precision: str) -> np.ndarray:
    """Logits rescored at ``precision`` with the argmax-stability guard.

    Args:
        logits: ``(..., vocab)`` fp32/fp64 verifier logits.
        precision: One of :data:`PRECISIONS`; ``"fp32"`` returns ``logits``
            unchanged (same object — the default path adds zero work).

    Returns:
        Array of the same shape where every row is either the quantized row
        (when its top-1/top-2 gap exceeds twice the row's max quantization
        error — argmax provably unchanged) or the original fp32 row (near
        tie: fall back rather than risk an argmax flip).  Every row's
        argmax equals the fp32 argmax, so greedy verification of the result
        commits bit-identical tokens.
    """
    if precision == "fp32":
        return logits
    if precision == "fp16":
        q = quantize_fp16(logits)
    elif precision == "int8":
        q = quantize_int8(logits)
    else:
        raise ValueError(
            f"precision must be one of {PRECISIONS}, got {precision!r}"
        )
    err = np.abs(q - logits).max(axis=-1)
    top2 = np.partition(q, -2, axis=-1)
    gap = top2[..., -1] - top2[..., -2]
    fallback = gap <= 2.0 * err
    n_rows = int(fallback.size)
    n_fallback = int(np.count_nonzero(fallback))
    ROWS_QUANTIZED.value += n_rows - n_fallback
    ROWS_FALLBACK.value += n_fallback
    if n_fallback:
        q = np.where(fallback[..., None], logits, q)
    return q
