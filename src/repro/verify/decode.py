"""Tree-based parallel decoding and the sequence-based reference (section 4.2).

``tree_parallel_decode`` scores *every* node of a token tree in a single
fused pass over the LLM: tree tokens are appended to the KV cache in DFS
order and attention is computed under the topology-aware causal mask, so the
logits obtained for node ``u`` are identical to what incremental decoding of
the sequence ``S_u`` would produce (Definition 4.1 — tested bit-exactly).

``sequence_parallel_decode`` is the baseline existing systems would use: the
tree is decomposed into root-to-leaf sequences, each decoded with its own
kernel and its own KV-cache region.  It produces the same outputs and also
reports the redundancy statistics (kernel launches, duplicated token
computations) that drive the Figure 11 comparison.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List

import numpy as np

from repro.model.attention import cross_mask
from repro.model.kv_cache import KVCache
from repro.model.sampling import SamplingConfig, distribution_from_logits
from repro.model.transformer import TransformerLM
from repro.tree.masks import (
    LinearizedTree,
    linearize,
    topology_causal_mask,
    tree_positions,
)
from repro.tree.token_tree import TokenTree


@dataclass
class TreeDecodeOutput:
    """LLM outputs 𝒪 for every node of a token tree.

    Attributes:
        lin: The DFS linearization used (maps nodes to KV-cache slots).
        logits: ``(n, vocab)`` logits in linear order; row ``lin.slot_of[u]``
            is the LLM's next-token logits after the sequence ``S_u``.
        prefix_len: KV-cache length before the tree tokens were appended.
    """

    lin: LinearizedTree
    logits: np.ndarray
    prefix_len: int

    def logits_for_node(self, node_idx: int) -> np.ndarray:
        """Next-token logits for tree node ``node_idx``."""
        return self.logits[self.lin.slot_of[node_idx]]

    def distribution_for_node(
        self, node_idx: int, config: SamplingConfig
    ) -> np.ndarray:
        """Next-token distribution at ``node_idx`` under ``config``."""
        return distribution_from_logits(self.logits_for_node(node_idx), config)

    def greedy_token_for_node(self, node_idx: int) -> int:
        """Argmax token at ``node_idx`` (greedy 𝒪(u))."""
        return int(np.argmax(self.logits_for_node(node_idx)))


# lint: allow-contract mask_out is an optional preallocated buffer; topology_causal_mask validates its shape
def tree_parallel_decode(
    model: TransformerLM, cache: KVCache, tree: TokenTree,
    mask_out: np.ndarray = None, scratch=None,
) -> TreeDecodeOutput:
    """Score all tree tokens against ``model`` in one fused pass.

    The tree tokens (root included — the root is the last generated token
    whose KV is not yet cached) are appended to ``cache`` in DFS order.  The
    caller is responsible for compacting the cache to the accepted path
    afterwards (see :class:`repro.verify.verifier.TokenTreeVerifier`).

    Args:
        mask_out: Optional ``(n, prefix + n)`` buffer for the topology mask
            (persistent callers pass a reused scratch so the steady-state
            loop allocates no masks).
        scratch: Optional :class:`~repro.model.scratch.ScratchArena` for the
            model's staging buffers (QKV, attention output, logits).  The
            returned logits then alias arena memory and are only valid until
            the next decode with the same arena.
    """
    lin = linearize(tree)
    prefix_len = cache.length
    mask = topology_causal_mask(lin, prefix_len, dtype=model.config.dtype,
                                out=mask_out)
    positions = tree_positions(lin, prefix_len)
    logits = model.forward_masked(lin.tokens, positions, mask, cache,
                                  scratch=scratch)
    return TreeDecodeOutput(lin=lin, logits=logits, prefix_len=prefix_len)


@dataclass
class SequenceDecodeStats:
    """Cost accounting for sequence-based decoding of a tree (Figure 11).

    Attributes:
        num_kernels: One per root-to-leaf sequence (kernel launches).
        tokens_computed: Total token positions processed across kernels —
            shared prefixes are recomputed per sequence, so this exceeds the
            tree's node count whenever the tree branches.
        unique_tokens: Number of distinct tree nodes (what tree-based
            decoding computes exactly once).
    """

    num_kernels: int
    tokens_computed: int
    unique_tokens: int

    @property
    def redundancy_factor(self) -> float:
        """How much extra work sequence decoding does vs tree decoding."""
        return self.tokens_computed / max(self.unique_tokens, 1)


def sequence_parallel_decode(
    model: TransformerLM, cache: KVCache, tree: TokenTree
) -> tuple:
    """Reference decoding: one kernel per root-to-leaf sequence.

    Returns ``(outputs, stats)`` where ``outputs`` maps node index -> logits
    (same semantics as :class:`TreeDecodeOutput`) and ``stats`` is a
    :class:`SequenceDecodeStats`.  The cache is restored to its entry state;
    this path exists for equivalence testing and cost comparison, not for
    production use.
    """
    prefix_len = cache.length
    outputs: Dict[int, np.ndarray] = {}
    tokens_computed = 0
    num_kernels = 0
    leaf_nodes = [i for i in range(len(tree)) if tree.is_leaf(i)]
    for leaf in leaf_nodes:
        path = tree.path_to(leaf)
        seq = np.array([tree.nodes[i].token for i in path], dtype=np.intp)
        n = len(seq)
        positions = np.arange(prefix_len, prefix_len + n)
        mask = cross_mask(n, prefix_len + n, prefix_len, dtype=model.config.dtype)
        logits = model.forward_masked(seq, positions, mask, cache)
        cache.truncate(prefix_len)
        num_kernels += 1
        tokens_computed += n
        for row, node_idx in enumerate(path):
            # Shared prefixes produce identical logits in every kernel; keep
            # the first computation.
            if node_idx not in outputs:
                outputs[node_idx] = logits[row]
    stats = SequenceDecodeStats(
        num_kernels=num_kernels,
        tokens_computed=tokens_computed,
        unique_tokens=len(tree),
    )
    return outputs, stats
