"""Token tree verifier (paper section 4).

* :mod:`repro.verify.decode` -- tree-based parallel decoding (one fused pass
  over the LLM with the topology-aware causal mask) and the sequence-based
  reference decomposition used as a baseline in Figure 11.
* :mod:`repro.verify.greedy` -- ``VerifyGreedy`` (Algorithm 2).
* :mod:`repro.verify.stochastic` -- ``VerifyStochastic``: multi-step
  speculative sampling (MSS) with residual renormalization.
* :mod:`repro.verify.naive` -- the naive-sampling baseline of section 4.3.
* :mod:`repro.verify.verifier` -- :class:`TokenTreeVerifier` façade combining
  decode + verification + KV-cache compaction.
"""

from repro.verify.decode import (
    SequenceDecodeStats,
    TreeDecodeOutput,
    sequence_parallel_decode,
    tree_parallel_decode,
)
from repro.verify.greedy import verify_greedy
from repro.verify.naive import verify_naive_sampling
from repro.verify.result import VerificationResult
from repro.verify.stochastic import verify_stochastic
from repro.verify.verifier import TokenTreeVerifier

__all__ = [
    "TreeDecodeOutput",
    "SequenceDecodeStats",
    "tree_parallel_decode",
    "sequence_parallel_decode",
    "verify_greedy",
    "verify_stochastic",
    "verify_naive_sampling",
    "VerificationResult",
    "TokenTreeVerifier",
]
